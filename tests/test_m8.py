"""Tests for -m8 records (repro.io.m8)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.m8 import M8Record, format_m8, parse_m8, read_m8, write_m8


def make_record(**kw) -> M8Record:
    base = dict(
        query_id="q1",
        subject_id="s1",
        pident=97.5,
        length=120,
        mismatches=3,
        gap_openings=1,
        q_start=1,
        q_end=120,
        s_start=11,
        s_end=130,
        evalue=1e-30,
        bit_score=222.0,
    )
    base.update(kw)
    return M8Record(**base)


class TestSerialisation:
    def test_line_has_12_fields(self):
        assert len(make_record().to_line().split("\t")) == 12

    def test_round_trip(self):
        rec = make_record()
        assert M8Record.from_line(rec.to_line()) == rec

    def test_short_line_raises(self):
        with pytest.raises(ValueError):
            M8Record.from_line("a\tb\tc")

    def test_parse_skips_comments_and_blanks(self):
        text = "# comment\n\n" + make_record().to_line() + "\n"
        assert len(parse_m8(text)) == 1

    def test_file_round_trip(self, tmp_path):
        records = [make_record(), make_record(q_start=5, q_end=60, length=56)]
        path = tmp_path / "hits.m8"
        write_m8(path, records)
        assert read_m8(path) == records

    def test_evalue_formatting_zero(self):
        assert "0.0" in make_record(evalue=0.0).to_line().split("\t")[10]

    def test_evalue_formatting_large(self):
        line = make_record(evalue=0.5).to_line()
        assert float(line.split("\t")[10]) == pytest.approx(0.5)

    @given(st.floats(min_value=1e-180, max_value=9.0))
    def test_evalue_parse_within_order_of_magnitude(self, e):
        rec = make_record(evalue=e)
        parsed = M8Record.from_line(rec.to_line())
        assert parsed.evalue == pytest.approx(e, rel=0.5)


class TestGeometry:
    def test_plus_strand_spans(self):
        rec = make_record(q_start=5, q_end=10, s_start=20, s_end=25)
        assert rec.q_span == (4, 10)
        assert rec.s_span == (19, 25)
        assert not rec.minus_strand

    def test_minus_strand(self):
        rec = make_record(s_start=30, s_end=21)
        assert rec.minus_strand
        assert rec.s_span == (20, 30)

    def test_q_span_half_open_length(self):
        rec = make_record(q_start=1, q_end=120)
        lo, hi = rec.q_span
        assert hi - lo == 120


class TestM8Writer:
    def _records(self, n=3):
        return [make_record(query_id=f"q{i}", length=100 + i) for i in range(n)]

    def test_byte_identical_to_write_m8(self, tmp_path):
        from repro.io.m8 import M8Writer

        records = self._records()
        whole = tmp_path / "whole.m8"
        write_m8(whole, records)
        streamed = tmp_path / "streamed.m8"
        with M8Writer(streamed) as out:
            out.write_record(records[0])
            out.write_records(records[1:])
        assert streamed.read_bytes() == whole.read_bytes()
        assert read_m8(streamed) == records

    def test_text_and_records_interleave(self, tmp_path):
        from repro.io.m8 import M8Writer

        records = self._records(4)
        path = tmp_path / "mixed.m8"
        with M8Writer(path) as out:
            out.write_records(records[:2])
            out.write_text(format_m8(records[2:]))  # e.g. a served slice
            assert out.n_records == 4
        assert read_m8(path) == records

    def test_empty_text_is_a_no_op(self, tmp_path):
        from repro.io.m8 import M8Writer

        path = tmp_path / "empty.m8"
        with M8Writer(path) as out:
            out.write_text("")
        assert path.read_bytes() == b"" and out.n_records == 0

    def test_unterminated_text_rejected(self, tmp_path):
        from repro.io.m8 import M8Writer

        with M8Writer(tmp_path / "x.m8") as out:
            with pytest.raises(ValueError, match="newline"):
                out.write_text("half a line")

    def test_borrowed_stream_left_open(self):
        import io

        from repro.io.m8 import M8Writer

        buf = io.StringIO()
        with M8Writer(buf) as out:
            out.write_records(self._records(2))
        assert not buf.closed  # borrowed, not owned
        assert parse_m8(buf.getvalue()) == self._records(2)
