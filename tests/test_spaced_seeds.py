"""Tests for spaced seeds composed with the ORIS ordering (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.scoring import ScoringScheme
from repro.align.ungapped import (
    batch_extend,
    extend_hit_spaced_ref,
    span_initial_score,
)
from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import mutate, random_dna
from repro.encoding import (
    PATTERNHUNTER_11_18,
    SpacedSeedMask,
    encode,
    spaced_seed_codes,
)
from repro.index import CsrSeedIndex
from repro.io.bank import Bank


class TestMask:
    def test_patternhunter_constants(self):
        m = SpacedSeedMask(PATTERNHUNTER_11_18)
        assert m.weight == 11
        assert m.span == 18
        assert not m.is_contiguous

    def test_contiguous_mask(self):
        m = SpacedSeedMask("1111")
        assert m.is_contiguous
        assert m.weight == m.span == 4

    def test_offsets(self):
        assert list(SpacedSeedMask("1101").offsets) == [0, 1, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            SpacedSeedMask("0101")
        with pytest.raises(ValueError):
            SpacedSeedMask("1010")
        with pytest.raises(ValueError):
            SpacedSeedMask("1x1")
        with pytest.raises(ValueError):
            SpacedSeedMask("")
        with pytest.raises(ValueError):
            SpacedSeedMask("1" * 40)


class TestSpacedCodes:
    def test_known_value(self):
        # mask 1101 over ACGT samples A,C,T -> 0 + 1*4 + 2*16 = 36
        m = SpacedSeedMask("1101")
        codes = spaced_seed_codes(encode("ACGT"), m)
        assert codes[0] == 36

    def test_dont_care_position_ignored(self):
        m = SpacedSeedMask("101")
        a = spaced_seed_codes(encode("AAG"), m)
        b = spaced_seed_codes(encode("ATG"), m)
        assert a[0] == b[0]

    def test_invalid_char_in_span_invalidates(self):
        # even at a don't-care position (separator bridging guard)
        m = SpacedSeedMask("101")
        codes = spaced_seed_codes(encode("ANG"), m)
        assert codes[0] == m.invalid_code()

    def test_tail_invalid(self):
        m = SpacedSeedMask("1101")
        codes = spaced_seed_codes(encode("ACGTA"), m)
        assert codes[2] == m.invalid_code()
        assert codes[1] != m.invalid_code()

    def test_contiguous_mask_equals_seed_codes(self):
        from repro.encoding import seed_codes

        m = SpacedSeedMask("11111")
        s = encode("ACGTACGTTGCA")
        assert np.array_equal(
            spaced_seed_codes(s, m)[:8], seed_codes(s, 5)[:8]
        )

    @given(st.text(alphabet="ACGT", min_size=6, max_size=40))
    def test_equal_codes_iff_sampled_positions_equal(self, s):
        m = SpacedSeedMask("11011")
        codes = spaced_seed_codes(encode(s), m)
        for i in range(len(s) - m.span + 1):
            for j in range(i + 1, len(s) - m.span + 1):
                sampled_i = [s[i + o] for o in m.offsets]
                sampled_j = [s[j + o] for o in m.offsets]
                assert (codes[i] == codes[j]) == (sampled_i == sampled_j)


class TestSpacedIndex:
    def test_index_and_intersection(self, rng):
        m = SpacedSeedMask("110101011")
        core = random_dna(rng, 100)
        b1 = Bank.from_strings([("a", random_dna(rng, 50) + core)])
        b2 = Bank.from_strings([("b", core + random_dna(rng, 50))])
        i1 = CsrSeedIndex(b1, 0, mask=m)
        i2 = CsrSeedIndex(b2, 0, mask=m)
        cc = i1.common_codes(i2)
        assert cc.n_pairs > 0
        assert i1.w == m.weight and i1.span == m.span

    def test_mask_mismatch_rejected(self, rng):
        b = Bank.from_strings([("a", random_dna(rng, 60))])
        i1 = CsrSeedIndex(b, 0, mask=SpacedSeedMask("1101"))
        i2 = CsrSeedIndex(b, 4)
        with pytest.raises(ValueError):
            i1.common_codes(i2)


class TestSpacedExtension:
    def make_pair(self, seed):
        rng = np.random.default_rng(seed)
        core = random_dna(rng, 80)
        mut = mutate(rng, core, sub_rate=0.08, indel_rate=0.0)
        s1 = random_dna(rng, 25) + core + random_dna(rng, 25)
        s2 = random_dna(rng, 30) + mut + random_dna(rng, 20)
        return Bank.from_strings([("a", s1)]), Bank.from_strings([("b", s2)])

    def all_hits(self, i1, i2):
        cc = i1.common_codes(i2)
        out = []
        for k in range(cc.n_codes):
            for a in i1.positions[cc.start1[k] : cc.start1[k] + cc.count1[k]]:
                for b in i2.positions[cc.start2[k] : cc.start2[k] + cc.count2[k]]:
                    out.append((int(a), int(b), int(cc.codes[k])))
        return out

    def test_span_initial_score(self, rng, scoring):
        s1 = Bank.from_strings([("a", "ACGTACGT")])
        s2 = Bank.from_strings([("b", "ACGAACGT")])  # one mismatch at off 3
        init = span_initial_score(s1.seq, s2.seq, np.array([1]), np.array([1]), 8, scoring)
        assert int(init[0]) == 7 * scoring.match - scoring.mismatch

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_batch_matches_scalar_spaced(self, seed):
        b1, b2 = self.make_pair(seed)
        m = SpacedSeedMask("1101011")
        i1 = CsrSeedIndex(b1, 0, mask=m)
        i2 = CsrSeedIndex(b2, 0, mask=m)
        hits = self.all_hits(i1, i2)
        if not hits:
            return
        sc = ScoringScheme()
        c1 = i1.cutoff_codes
        c2 = i2.cutoff_codes
        expected = []
        for p1, p2, _c in hits:
            r = extend_hit_spaced_ref(
                b1.seq, b2.seq, c1, c2, p1, p2, m.span, sc
            )
            if r is not None:
                expected.append(r)
        p1v = np.array([h[0] for h in hits])
        p2v = np.array([h[1] for h in hits])
        cv = np.array([h[2] for h in hits])
        init = span_initial_score(b1.seq, b2.seq, p1v, p2v, m.span, sc)
        res = batch_extend(
            b1.seq, b2.seq, c1, p1v, p2v, cv, m.span, sc,
            codes2=c2, initial_scores=init,
        )
        got = [
            (
                int(res.start1[i]), int(res.end1[i]), int(res.start2[i]),
                int(res.end2[i]), int(res.score[i]),
            )
            for i in np.nonzero(res.kept)[0]
        ]
        assert sorted(got) == sorted(expected)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_no_duplicate_boxes(self, seed):
        b1, b2 = self.make_pair(seed)
        m = SpacedSeedMask("110101011")
        i1 = CsrSeedIndex(b1, 0, mask=m)
        i2 = CsrSeedIndex(b2, 0, mask=m)
        sc = ScoringScheme()
        boxes = []
        for p1, p2, _c in self.all_hits(i1, i2):
            r = extend_hit_spaced_ref(
                b1.seq, b2.seq, i1.cutoff_codes, i2.cutoff_codes,
                p1, p2, m.span, sc,
            )
            if r is not None:
                boxes.append(r)
        assert len(boxes) == len(set(boxes)), "duplicate spaced HSP"


class TestSpacedEngine:
    def test_end_to_end(self, rng):
        core = random_dna(rng, 300)
        mut = mutate(rng, core, sub_rate=0.05, indel_rate=0.003)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        res = OrisEngine(
            OrisParams(spaced_seed=PATTERNHUNTER_11_18)
        ).compare(b1, b2)
        assert len(res.records) >= 1
        assert res.records[0].pident > 90

    def test_ablation_records_equal(self, rng):
        core = random_dna(rng, 400)
        mut = mutate(rng, core, sub_rate=0.08, indel_rate=0.002)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        on = OrisEngine(OrisParams(spaced_seed=PATTERNHUNTER_11_18)).compare(b1, b2)
        off = OrisEngine(
            OrisParams(spaced_seed=PATTERNHUNTER_11_18, ordered_cutoff=False)
        ).compare(b1, b2)
        assert {r.to_line() for r in on.records} == {r.to_line() for r in off.records}

    def test_spaced_beats_contiguous_at_high_divergence(self):
        # Aggregate over several trials: PatternHunter's weight-11 seed
        # recovers more heavily-substituted homology than contiguous W=11
        # (the spaced-seed literature's core claim).
        tot11 = totph = 0
        for t in range(4):
            rng = np.random.default_rng(500 + t)
            g = random_dna(rng, 12_000)
            m = mutate(rng, g, sub_rate=0.24, indel_rate=0.0)
            b1 = Bank.from_strings([("G", g)])
            b2 = Bank.from_strings([("M", m)])
            tot11 += sum(
                r.length
                for r in OrisEngine(OrisParams(w=11, max_evalue=10)).compare(b1, b2).records
            )
            totph += sum(
                r.length
                for r in OrisEngine(
                    OrisParams(spaced_seed=PATTERNHUNTER_11_18, max_evalue=10)
                ).compare(b1, b2).records
            )
        assert totph > tot11

    def test_incompatible_with_asymmetric(self):
        with pytest.raises(ValueError):
            OrisParams(spaced_seed="1101", asymmetric=True)

    def test_invalid_mask_rejected(self):
        with pytest.raises(ValueError):
            OrisParams(spaced_seed="0110")

    def test_cli_flag(self, rng, tmp_path):
        from repro.cli import run

        core = random_dna(rng, 200)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", core)])
        p1, p2 = tmp_path / "a.fa", tmp_path / "b.fa"
        b1.to_fasta(p1)
        b2.to_fasta(p2)
        out = tmp_path / "o.m8"
        rc = run([str(p1), str(p2), "--spaced-seed", "110110111", "-o", str(out)])
        assert rc == 0
        assert out.read_text().strip()
