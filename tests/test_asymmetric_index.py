"""Tests for asymmetric indexing (paper section 3.4)."""

import numpy as np
import pytest

from repro.data.synthetic import random_dna
from repro.index import CsrSeedIndex, build_asymmetric_indexes
from repro.io.bank import Bank


class TestConstruction:
    def test_halves_requested_bank(self):
        b1 = Bank.from_strings([("a", "ACGT" * 20)])
        b2 = Bank.from_strings([("b", "ACGT" * 20)])
        i1, i2 = build_asymmetric_indexes(b1, b2, w=4, subsample_bank=2)
        full = CsrSeedIndex(b1, 4)
        assert i1.n_indexed == full.n_indexed
        assert i2.n_indexed <= (full.n_indexed + 1) // 2 + 1

    def test_subsample_bank_1(self):
        b1 = Bank.from_strings([("a", "ACGT" * 20)])
        b2 = Bank.from_strings([("b", "ACGT" * 20)])
        i1, i2 = build_asymmetric_indexes(b1, b2, w=4, subsample_bank=1)
        assert i1.n_indexed < i2.n_indexed

    def test_invalid_subsample_choice(self):
        b = Bank.from_strings([("a", "ACGTACGT")])
        with pytest.raises(ValueError):
            build_asymmetric_indexes(b, b, subsample_bank=3)


class TestCoverageArgument:
    """Paper: 'All 11-nt seeds are detected together with an average of
    50% of the 10-nt seed anchoring.'

    Coverage proof obligation: any (w+1)-nt exact match contains two
    w-windows at consecutive offsets, so whatever parity survives the
    stride-2 subsampling, at least one of them is indexed.
    """

    def test_every_w_plus_1_match_is_anchored(self, rng):
        w = 6
        # Construct banks sharing implanted (w+1)-mers at various offsets.
        core_positions = []
        s1 = random_dna(rng, 400)
        s2 = list(random_dna(rng, 400))
        for t in range(20):
            p1 = 10 + t * 19  # vary parity
            p2 = 7 + t * 19
            frag = s1[p1 : p1 + w + 1]
            s2[p2 : p2 + w + 1] = frag
            core_positions.append((p1, p2))
        b1 = Bank.from_strings([("a", s1)])
        b2 = Bank.from_strings([("b", "".join(s2))])
        i1, i2 = build_asymmetric_indexes(b1, b2, w=w, subsample_bank=2)
        common = i1.common_codes(i2)
        codes_common = set(int(c) for c in common.codes)
        from repro.encoding import seed_codes

        codes1 = seed_codes(b1.seq, w)
        gs1, _ = b1.bounds(0)
        anchored = 0
        for p1, _p2 in core_positions:
            c_a = int(codes1[gs1 + p1])
            c_b = int(codes1[gs1 + p1 + 1])
            if c_a in codes_common or c_b in codes_common:
                anchored += 1
        assert anchored == len(core_positions)

    def test_half_of_w_hits_expected(self, rng):
        # Exact-w (not extensible) matches anchor ~50% of the time; verify
        # the subsampled index keeps about half the words.
        b = Bank.from_strings([("a", random_dna(rng, 2000))])
        full = CsrSeedIndex(b, 10)
        half = CsrSeedIndex(b, 10, stride=2)
        assert half.n_indexed == pytest.approx(full.n_indexed / 2, rel=0.02)
