"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.scoring import ScoringScheme
from repro.data.synthetic import Transcriptome, make_est_bank, random_dna
from repro.io.bank import Bank


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need different streams reseed."""
    return np.random.default_rng(1234)


@pytest.fixture
def scoring() -> ScoringScheme:
    return ScoringScheme()


@pytest.fixture
def small_bank(rng) -> Bank:
    """Three short sequences with one N and mixed case in the source."""
    return Bank.from_strings(
        [
            ("alpha", random_dna(rng, 200)),
            ("beta", random_dna(rng, 150) + "N" + random_dna(rng, 49)),
            ("gamma", random_dna(rng, 80)),
        ]
    )


@pytest.fixture
def homologous_banks(rng) -> tuple[Bank, Bank, str]:
    """Two single-sequence banks sharing one exact 60-nt core.

    Returns (bank1, bank2, core); the core starts at local position 30 in
    each sequence.
    """
    core = random_dna(rng, 60)
    s1 = random_dna(rng, 30) + core + random_dna(rng, 30)
    s2 = random_dna(rng, 30) + core + random_dna(rng, 40)
    return (
        Bank.from_strings([("one", s1)]),
        Bank.from_strings([("two", s2)]),
        core,
    )


@pytest.fixture(scope="session")
def est_pair() -> tuple[Bank, Bank]:
    """A pair of EST banks from a shared transcriptome (session-scoped:
    several end-to-end tests reuse it)."""
    rng = np.random.default_rng(77)
    tx = Transcriptome.generate(rng, n_genes=25, mean_len=600)
    return make_est_bank(rng, tx, 60), make_est_bank(rng, tx, 60)
