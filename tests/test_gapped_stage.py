"""Tests for the shared step-3 driver (repro.core.gapped_stage)."""

import numpy as np
import pytest

from repro.align.hsp import GappedAlignment, HSPTable
from repro.align.scoring import ScoringScheme
from repro.core.engine import WorkCounters
from repro.core.gapped_stage import _filter_contained, run_gapped_stage
from repro.data.synthetic import mutate, random_dna
from repro.io.bank import Bank


def make_case(seed=0, n_cores=4):
    """Banks with several implanted homologies + their HSP table."""
    rng = np.random.default_rng(seed)
    parts1, parts2 = [], []
    for _ in range(n_cores):
        core = random_dna(rng, 120)
        parts1.append(random_dna(rng, 60) + core)
        parts2.append(random_dna(rng, 40) + mutate(rng, core, 0.03, 0.002))
    b1 = Bank.from_strings([("q", "".join(parts1))])
    b2 = Bank.from_strings([("s", "".join(parts2))])
    # Build the HSP table through the engine's step 2.
    from repro.core import OrisEngine, OrisParams

    eng = OrisEngine(OrisParams())
    i1, i2 = eng._build_indexes(b1, b2)
    from repro.align.evalue import karlin_params

    thr = eng._resolve_hsp_min_score(b1, b2, karlin_params(ScoringScheme()))
    table = eng._ungapped_stage(i1, i2, thr, WorkCounters())
    return b1, b2, table


class TestSchedulingEquivalence:
    @pytest.mark.parametrize("sched", ["single", "waves"])
    def test_matches_serial_alignment_set(self, sched):
        b1, b2, table = make_case(3)
        sc = ScoringScheme()
        serial = run_gapped_stage(
            b1, b2, table, sc, 16, WorkCounters(), scheduling="serial"
        )
        other = run_gapped_stage(
            b1, b2, table, sc, 16, WorkCounters(), scheduling=sched
        )
        key = lambda a: (a.start1, a.end1, a.start2, a.end2)
        s_keys = {key(a) for a in serial}
        o_keys = {key(a) for a in other}
        assert len(s_keys ^ o_keys) <= max(1, len(s_keys) // 20)

    def test_unknown_scheduling_rejected(self):
        b1, b2, table = make_case(1)
        with pytest.raises(ValueError):
            run_gapped_stage(
                b1, b2, table, ScoringScheme(), 16, WorkCounters(),
                scheduling="florp",
            )

    def test_empty_table(self):
        b = Bank.from_strings([("a", "ACGTACGTACGT")])
        out = run_gapped_stage(
            b, b, HSPTable(), ScoringScheme(), 16, WorkCounters()
        )
        assert out == []

    def test_min_align_score_floor(self):
        b1, b2, table = make_case(5)
        sc = ScoringScheme()
        all_out = run_gapped_stage(b1, b2, table, sc, 16, WorkCounters())
        floored = run_gapped_stage(
            b1, b2, table, sc, 16, WorkCounters(), min_align_score=10_000
        )
        assert len(floored) == 0
        assert len(all_out) > 0


class TestFilterContained:
    def aln(self, s1, e1, s2, e2, score, dmin=None, dmax=None):
        d = s2 - s1
        return GappedAlignment(
            start1=s1, end1=e1, start2=s2, end2=e2, score=score,
            matches=score, mismatches=0, gap_columns=0, gap_openings=0,
            min_diag=dmin if dmin is not None else d,
            max_diag=dmax if dmax is not None else d,
        )

    def test_contained_dropped(self):
        big = self.aln(0, 100, 50, 150, 90)
        small = self.aln(10, 50, 60, 100, 30)
        c = WorkCounters()
        kept = _filter_contained([big, small], 16, c)
        assert kept == [big]
        assert c.n_skipped_contained == 1

    def test_disjoint_kept(self):
        a = self.aln(0, 100, 50, 150, 90)
        b = self.aln(500, 600, 700, 800, 80)
        kept = _filter_contained([a, b], 16, WorkCounters())
        assert set(map(id, kept)) == {id(a), id(b)}

    def test_same_box_different_diag_range_kept(self):
        # overlapping boxes on far diagonals must both survive
        a = self.aln(0, 100, 50, 150, 90)
        b = self.aln(0, 100, 500, 600, 80)
        kept = _filter_contained([a, b], 16, WorkCounters())
        assert len(kept) == 2

    def test_order_preserved(self):
        a = self.aln(0, 100, 50, 150, 90)
        b = self.aln(500, 600, 700, 800, 95)
        kept = _filter_contained([a, b], 16, WorkCounters())
        assert kept == [a, b]  # input (diagonal) order, not score order

    def test_empty(self):
        assert _filter_contained([], 16, WorkCounters()) == []
