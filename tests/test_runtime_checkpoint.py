"""Unit tests for the checkpoint journal (repro.runtime.checkpoint)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.parallel import RangeResult
from repro.runtime.checkpoint import JOURNAL_VERSION, CheckpointJournal
from repro.runtime.errors import CheckpointCorrupt

FP = {"algo": "test", "n_tasks": 4, "crc": 123}


def make_result(n: int = 5, offset: int = 0) -> RangeResult:
    s1 = np.arange(n, dtype=np.int64) + offset
    return RangeResult(
        start1=s1,
        end1=s1 + 10,
        start2=s1 + 3,
        score=np.full(n, 7, dtype=np.int64),
        n_pairs=12,
        n_cut=3,
        steps=99,
    )


@pytest.fixture
def journal(tmp_path):
    with CheckpointJournal(tmp_path / "ckpt") as j:
        yield j


class TestRoundTrip:
    def test_record_and_load(self, journal):
        journal.create(FP)
        a, b = make_result(5), make_result(3, offset=100)
        journal.record(0, 0, 10, a)
        journal.record(2, 20, 30, b)
        journal.close()
        loaded = journal.load(FP)
        assert sorted(loaded) == [0, 2]
        assert np.array_equal(loaded[0].start1, a.start1)
        assert np.array_equal(loaded[2].score, b.score)
        assert loaded[2].n_pairs == 12
        assert loaded[0].steps == 99

    def test_empty_journal_loads_nothing(self, journal):
        journal.create(FP)
        journal.close()
        assert journal.load(FP) == {}

    def test_duplicate_record_last_wins(self, journal):
        journal.create(FP)
        journal.record(1, 0, 10, make_result(2))
        journal.record(1, 0, 10, make_result(6))
        journal.close()
        # The first line's CRC no longer matches the (overwritten) chunk;
        # the second line claims it back.
        with pytest.warns(RuntimeWarning, match="checksum"):
            loaded = journal.load(FP)
        assert loaded[1].n_hsps == 6


class TestCorruption:
    def test_missing_journal(self, tmp_path):
        with pytest.raises(CheckpointCorrupt, match="no journal"):
            CheckpointJournal(tmp_path / "nowhere").load(FP)

    def test_fingerprint_mismatch(self, journal):
        journal.create(FP)
        journal.close()
        with pytest.raises(CheckpointCorrupt, match="fingerprint"):
            journal.load({**FP, "crc": 999})

    def test_version_mismatch(self, journal):
        journal.create(FP)
        journal.close()
        rows = journal.path.read_text().splitlines()
        header = json.loads(rows[0])
        header["version"] = JOURNAL_VERSION + 1
        journal.path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointCorrupt, match="version"):
            journal.load(FP)

    def test_torn_tail_is_tolerated(self, journal):
        journal.create(FP)
        journal.record(0, 0, 10, make_result())
        journal.close()
        with open(journal.path, "a") as fh:
            fh.write('{"kind": "task", "task": 1, "lo"')  # torn append
        loaded = journal.load(FP)
        assert sorted(loaded) == [0]

    def test_garbage_midline_raises(self, journal):
        journal.create(FP)
        journal.record(0, 0, 10, make_result())
        journal.close()
        rows = journal.path.read_text().splitlines()
        rows.insert(1, "!!not json!!")
        journal.path.write_text("\n".join(rows) + "\n")
        with pytest.raises(CheckpointCorrupt, match="not valid JSON"):
            journal.load(FP)

    def test_missing_chunk_recomputes(self, journal):
        journal.create(FP)
        journal.record(0, 0, 10, make_result())
        journal.record(1, 10, 20, make_result())
        journal.close()
        (journal.directory / "chunk_000000.npz").unlink()
        with pytest.warns(RuntimeWarning, match="missing"):
            loaded = journal.load(FP)
        assert sorted(loaded) == [1]

    def test_bitflipped_chunk_recomputes(self, journal):
        journal.create(FP)
        journal.record(0, 0, 10, make_result())
        journal.close()
        chunk = journal.directory / "chunk_000000.npz"
        blob = bytearray(chunk.read_bytes())
        blob[len(blob) // 2] ^= 0x55
        chunk.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="checksum"):
            loaded = journal.load(FP)
        assert loaded == {}

    def test_no_header_raises(self, journal):
        journal.create(FP)
        journal.record(0, 0, 10, make_result())
        journal.close()
        rows = journal.path.read_text().splitlines()
        journal.path.write_text("\n".join(rows[1:]) + "\n")
        with pytest.raises(CheckpointCorrupt, match="header"):
            journal.load(FP)
