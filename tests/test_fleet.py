"""Tests for sharded scatter-gather serving (repro.serve.fleet).

The fleet's whole value proposition is one sentence: a router over N
shard daemons returns *byte-identical* output to one daemon over the
whole bank.  The tests here attack that claim at three levels --
pure-function (planner cuts + ownership partition), unit (per-tile
compare + seam-exact merge, including a hypothesis sweep over random
banks and cut geometries), and end-to-end over real sockets and real
child processes (router + manager vs a single daemon, plus the degraded
and quota-shed paths that must fail loudly rather than truncate).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.align.records import M8Record
from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import mutate, random_dna
from repro.io.bank import Bank
from repro.obs import MetricsRegistry
from repro.runtime import faults
from repro.serve import OrisClient, OrisDaemon, ServeConfig
from repro.serve.admission import TenantQuotas
from repro.serve.client import QueryFailed, ServerShed
from repro.serve.fleet import (
    FleetRouter,
    RouterConfig,
    ShardManager,
    compare_shard,
    load_plan,
    merge_shard_records,
    plan_fleet,
    required_overlap,
    write_plan,
)
from repro.serve.fleet.planner import FleetProfile, load_profile


def seam_bank(rng, chrom_nt=20_000, core_nt=250):
    """A long sequence with a repeated (mutated) core motif planted
    throughout, so seam-straddling alignments actually occur, plus a
    couple of short packed sequences."""
    core = random_dna(rng, core_nt)
    parts, pos = [], 0
    while pos < chrom_nt:
        fill = random_dna(rng, int(rng.integers(400, 1200)))
        parts.append(fill)
        pos += len(fill)
        hit = mutate(rng, core, sub_rate=0.02, indel_rate=0.0)
        parts.append(hit)
        pos += len(hit)
    chrom = "".join(parts)
    bank = Bank.from_strings(
        [
            ("chrA", chrom),
            ("short1", random_dna(rng, 700)),
            ("short2", mutate(rng, core, sub_rate=0.03, indel_rate=0.0)),
        ]
    )
    return bank, core, chrom


# --------------------------------------------------------------------- #
# Planner
# --------------------------------------------------------------------- #


class TestRequiredOverlap:
    def test_covers_twice_the_span(self):
        p = OrisParams()
        ov = required_overlap(400, p)
        assert ov >= 2 * (400 + 2 * p.band_radius)

    def test_monotonic_in_query_size(self):
        p = OrisParams()
        assert required_overlap(1000, p) > required_overlap(100, p)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            required_overlap(0)


class TestPlanFleet:
    def test_ownership_partitions_every_sequence(self, rng):
        bank, _, chrom = seam_bank(rng)
        plan = plan_fleet(bank, 4, required_overlap(400))
        for name in bank.names:
            total = bank.sequence_length(bank.names.index(name))
            intervals = sorted(
                (s.owned_from[name], s.owned_until[name])
                for s in plan.specs
                if name in s.offsets
            )
            assert intervals[0][0] == 0
            assert intervals[-1][1] == total
            for (_, b1), (a2, _) in zip(intervals, intervals[1:]):
                assert b1 == a2  # no gap, no double-ownership

    def test_windows_reconstruct_sequence(self, rng):
        bank, _, chrom = seam_bank(rng)
        plan = plan_fleet(bank, 4, required_overlap(400))
        for spec, shard in zip(plan.specs, plan.banks):
            for i, name in enumerate(shard.names):
                off = spec.offsets[name]
                window = shard.sequence_str(i)
                assert chrom[off : off + len(window)] == window or name != "chrA"

    def test_degenerate_single_shard(self, rng):
        bank = Bank.from_strings([("s", random_dna(rng, 500))])
        plan = plan_fleet(bank, 3, required_overlap(400))
        assert plan.n_shards == 1

    def test_owns_uses_original_coordinates(self, rng):
        bank, _, _ = seam_bank(rng)
        plan = plan_fleet(bank, 4, required_overlap(400))
        # A window-relative m8 interval is owned by exactly one shard
        # after its offset is applied.
        for probe in (0, 1, 5_000, 12_345, bank.sequence_length(0) - 10):
            owners = [
                s
                for s in plan.specs
                if "chrA" in s.offsets
                and s.owns("chrA", probe + 1 - s.offsets["chrA"], probe + 5 - s.offsets["chrA"])
            ]
            assert len(owners) == 1

    def test_plan_roundtrip(self, rng, tmp_path):
        bank, _, _ = seam_bank(rng)
        plan = plan_fleet(bank, 3, required_overlap(400))
        path = write_plan(plan, str(tmp_path))
        loaded = load_plan(path)
        assert loaded.n_shards == plan.n_shards
        assert loaded.overlap == plan.overlap
        assert [s.to_dict() for s in loaded.specs] == [
            s.to_dict() for s in plan.specs
        ]
        prof = load_profile(str(tmp_path / "profile.json"))
        assert prof.subject_nt == bank.size_nt
        assert prof.subject_seqs == bank.n_sequences
        # every shard FASTA exists and parses
        for spec in loaded.specs:
            shard = Bank.from_fasta(str(tmp_path / spec.fasta))
            assert shard.names == list(spec.offsets)

    def test_profile_roundtrip_and_lengths(self, rng):
        bank, _, _ = seam_bank(rng)
        plan = plan_fleet(bank, 2, required_overlap(400))
        prof = FleetProfile.from_dict(plan.profile.to_dict())
        assert prof == plan.profile
        lengths = prof.subject_lengths_for(plan.banks[0])
        for i, name in enumerate(plan.banks[0].names):
            assert lengths[i] == prof.full_nt[name]


# --------------------------------------------------------------------- #
# Seam-exact merge (unit level, no sockets)
# --------------------------------------------------------------------- #


class TestSeamExactMerge:
    def _merged_equals_monolithic(self, rng, bank2, queries, n_shards, overlap):
        params = OrisParams()
        engine = OrisEngine(params)
        plan = plan_fleet(bank2, n_shards, overlap)
        total_dedup = 0
        for qname, qseq in queries:
            bank1 = Bank.from_strings([(qname, qseq)])
            ref = engine.compare(bank1, bank2).records
            shard_results = [
                (spec, compare_shard(bank1, shard, params, plan.profile))
                for spec, shard in zip(plan.specs, plan.banks)
            ]
            merged, dropped = merge_shard_records(shard_results)
            total_dedup += dropped
            assert merged == ref, f"query {qname} diverged from monolithic"
        return plan, total_dedup

    def test_seam_straddling_alignments_dedup_exactly(self, rng):
        bank2, core, chrom = seam_bank(rng)
        overlap = required_overlap(400)
        queries = [("qcore", core)]
        for start in range(2_000, len(chrom) - 500, 4_000):
            queries.append(
                (f"q{start}", mutate(rng, chrom[start : start + 420],
                                     sub_rate=0.03, indel_rate=0.0))
            )
        plan, dedup = self._merged_equals_monolithic(
            rng, bank2, queries, n_shards=5, overlap=overlap
        )
        assert plan.n_shards >= 2
        assert dedup > 0  # the seams were actually exercised

    def test_packed_short_sequences_never_dedup(self, rng):
        bank2 = Bank.from_strings(
            [(f"s{i}", random_dna(rng, 300)) for i in range(40)]
        )
        q = mutate(rng, bank2.sequence_str(7), sub_rate=0.02, indel_rate=0.0)
        plan, dedup = self._merged_equals_monolithic(
            rng, bank2, [("q", q)], n_shards=4, overlap=required_overlap(350)
        )
        assert dedup == 0  # whole sequences live in exactly one shard


class TestFleetPropertyHypothesis:
    """Satellite: for random banks and cut points, the dedup-merged
    per-tile HSP sets equal the uncut-bank HSP set *exactly*."""

    def test_random_banks_and_cut_points(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        params = OrisParams()
        engine = OrisEngine(params)

        @settings(max_examples=12, deadline=None)
        @given(
            seed=st.integers(0, 2**31 - 1),
            chrom_nt=st.integers(4_000, 12_000),
            n_shards=st.integers(2, 5),
            extra_overlap=st.integers(0, 500),
        )
        def inner(seed, chrom_nt, n_shards, extra_overlap):
            rng = np.random.default_rng(seed)
            bank2, core, chrom = seam_bank(rng, chrom_nt=chrom_nt, core_nt=180)
            overlap = required_overlap(250, params) + extra_overlap
            plan = plan_fleet(bank2, n_shards, overlap)
            start = int(rng.integers(0, max(len(chrom) - 300, 1)))
            queries = [
                ("qcore", core),
                ("qwin", mutate(rng, chrom[start : start + 260],
                                sub_rate=0.03, indel_rate=0.0)),
            ]
            for qname, qseq in queries:
                bank1 = Bank.from_strings([(qname, qseq)])
                ref = engine.compare(bank1, bank2).records
                shard_results = [
                    (spec, compare_shard(bank1, shard, params, plan.profile))
                    for spec, shard in zip(plan.specs, plan.banks)
                ]
                merged, _ = merge_shard_records(shard_results)
                assert merged == ref

        inner()


# --------------------------------------------------------------------- #
# Tenant quotas
# --------------------------------------------------------------------- #


class TestTenantQuotas:
    def test_acquire_release_cycle(self):
        q = TenantQuotas(2)
        assert q.try_acquire("a").admitted
        assert q.try_acquire("a").admitted
        d = q.try_acquire("a")
        assert not d.admitted and d.status == "shed"
        assert "quota" in d.reason
        q.release("a")
        assert q.try_acquire("a").admitted

    def test_tenants_are_independent(self):
        q = TenantQuotas(1)
        assert q.try_acquire("a").admitted
        assert q.try_acquire("b").admitted
        assert not q.try_acquire("a").admitted

    def test_anonymous_bucket_shared(self):
        q = TenantQuotas(1)
        assert q.try_acquire().admitted
        assert not q.try_acquire("").admitted

    def test_shed_counted(self):
        reg = MetricsRegistry()
        q = TenantQuotas(1, registry=reg)
        q.try_acquire("a")
        q.try_acquire("a")
        assert reg.value("serve.requests_shed_tenant") == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuotas(0)

    def test_release_cleans_up(self):
        q = TenantQuotas(3)
        q.try_acquire("a")
        q.release("a")
        assert q.in_flight("a") == 0


# --------------------------------------------------------------------- #
# Fault points
# --------------------------------------------------------------------- #


class TestFleetFaultPoints:
    def test_points_registered(self):
        assert "fleet.shard_unreachable" in faults.FAULT_POINTS
        assert "fleet.partial_gather" in faults.FAULT_POINTS

    def test_points_armable(self):
        faults.disarm()
        try:
            faults.arm("fleet.shard_unreachable:1.0:7,fleet.partial_gather:0.5:9")
            assert faults.armed()
            assert faults.should_fire("fleet.shard_unreachable", "0:q")
        finally:
            faults.disarm()


# --------------------------------------------------------------------- #
# Announce file
# --------------------------------------------------------------------- #


class TestAnnounceFile:
    def test_write_announce_contents(self, tmp_path):
        from repro.cli import _write_announce

        path = tmp_path / "a.json"
        _write_announce(str(path), "127.0.0.1", 4321)
        data = json.loads(path.read_text())
        assert data == {"host": "127.0.0.1", "port": 4321, "pid": os.getpid()}

    def test_daemon_announces_bound_address(self, rng, tmp_path):
        import subprocess
        import sys
        import time

        bank = Bank.from_strings([("s", random_dna(rng, 2_000))])
        fa = tmp_path / "bank.fa"
        bank.to_fasta(str(fa))
        ann = tmp_path / "daemon.json"
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=pkg_root)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(fa),
             "--port", "0", "--workers", "1", "--announce-file", str(ann)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            data = None
            while time.monotonic() < deadline:
                if ann.exists():
                    try:
                        data = json.loads(ann.read_text())
                        break
                    except json.JSONDecodeError:
                        pass  # mid-write; the write is atomic, retry
                time.sleep(0.05)
            assert data is not None, "daemon never announced"
            assert data["pid"] == proc.pid
            client = OrisClient(data["host"], data["port"], timeout=30)
            assert client.ping()
        finally:
            proc.terminate()
            proc.wait(timeout=30)


# --------------------------------------------------------------------- #
# End-to-end: router + manager over real sockets vs a single daemon
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fleet_stack(tmp_path_factory):
    """A 3-shard fleet and a single-daemon reference over the same bank.

    Module-scoped: child daemons cost ~1 s each to start, and every
    test in this section reads, never mutates, the stack.
    """
    rng = np.random.default_rng(99)
    bank2, core, chrom = seam_bank(rng, chrom_nt=24_000)
    params = OrisParams()
    work = tmp_path_factory.mktemp("fleet")

    daemon = OrisDaemon(
        bank2, params,
        ServeConfig(n_workers=1, check_memory=False, max_delay_ms=10.0),
    )
    daemon.start()

    plan = plan_fleet(bank2, 3, required_overlap(500, params))
    write_plan(plan, str(work))
    manager = ShardManager(plan, str(work), shard_args=["--workers", "1"])
    manager.start()
    router = FleetRouter(
        plan, manager, params=params,
        config=RouterConfig(tenant_quota=2),
    )
    router.start()
    try:
        yield {
            "bank": bank2, "core": core, "chrom": chrom,
            "daemon": daemon, "router": router, "manager": manager,
            "plan": plan, "rng": rng,
        }
    finally:
        router.shutdown()
        manager.stop()
        daemon.shutdown()


class TestShardRespawn:
    def test_sigkilled_shard_is_respawned_once(self, rng, tmp_path):
        """A dead shard must be recorded as ONE death (not one per poll
        tick, which would push the respawn deadline forward forever)."""
        import signal

        bank = Bank.from_strings([("chrA", random_dna(rng, 8_000))])
        plan = plan_fleet(bank, 2, required_overlap(400))
        write_plan(plan, str(tmp_path))
        manager = ShardManager(plan, str(tmp_path), shard_args=["--workers", "1"])
        manager.start()
        try:
            victim = manager.health()[0]
            os.kill(victim.pid, signal.SIGKILL)
            import time

            deadline = time.monotonic() + 60
            state = None
            while time.monotonic() < deadline:
                state = manager.health()[0]
                if state.state == "ready" and state.pid != victim.pid:
                    break
                time.sleep(0.2)
            assert state is not None
            assert state.state == "ready" and state.pid != victim.pid
            assert state.respawns == 1
            assert manager.registry.value("fleet.shard_deaths") == 1
        finally:
            manager.stop()


class TestFleetEndToEnd:
    def test_byte_identical_to_single_daemon(self, fleet_stack):
        s = fleet_stack
        rng = np.random.default_rng(7)
        single = OrisClient(*s["daemon"].address, timeout=60)
        fleet = OrisClient(*s["router"].address, timeout=120)
        queries = [("qcore", s["core"])]
        chrom = s["chrom"]
        for start in range(1_000, len(chrom) - 600, 5_000):
            queries.append(
                (f"q{start}",
                 mutate(rng, chrom[start : start + 450],
                        sub_rate=0.03, indel_rate=0.0))
            )
        for name, seq in queries:
            assert fleet.query(name, seq) == single.query(name, seq)

    def test_health_aggregates_all_shards(self, fleet_stack):
        client = OrisClient(*fleet_stack["router"].address, timeout=30)
        h = client.health()
        assert h["healthy"] is True
        assert h["n_shards"] == fleet_stack["plan"].n_shards
        shard_entries = [k for k in h["components"] if k.startswith("shard")]
        assert len(shard_entries) == fleet_stack["plan"].n_shards

    def test_fleet_metrics_populated(self, fleet_stack):
        client = OrisClient(*fleet_stack["router"].address, timeout=30)
        client.health()  # refreshes the degraded gauge
        snap = fleet_stack["router"].registry.as_dict()
        counters = snap["counters"]
        assert counters.get("fleet.queries", 0) > 0
        assert counters.get("fleet.seam_hits_deduped", 0) > 0
        assert "fleet.scatter_fanout" in snap["histograms"]
        assert "fleet.gather_wait_ms" in snap["histograms"]
        assert snap["gauges"]["fleet.shards_degraded"]["value"] == 0.0

    def test_tenant_quota_sheds_loudly(self, fleet_stack):
        # quota is 2 in-flight per tenant; saturate synthetically via the
        # router's own quota object, then observe the on-wire shed.
        router = fleet_stack["router"]
        quotas = router.tenants
        assert quotas is not None
        quotas.try_acquire("greedy")
        quotas.try_acquire("greedy")
        try:
            client = OrisClient(
                *router.address, timeout=30, retries=0
            )
            with pytest.raises(ServerShed, match="quota"):
                client.query("q", "ACGT" * 50, tenant="greedy")
        finally:
            quotas.release("greedy")
            quotas.release("greedy")

    def test_partial_gather_refused_not_truncated(self, fleet_stack):
        router = fleet_stack["router"]
        faults.disarm()
        # fire only for this test's query name (the fault key is
        # "<shard_id>:<query name>")
        faults.arm("fleet.shard_unreachable:1.0:3:qboom")
        try:
            client = OrisClient(*router.address, timeout=60, retries=0)
            with pytest.raises(QueryFailed, match="partial result refused"):
                client.query("qboom", fleet_stack["core"])
        finally:
            faults.disarm()
        # the fleet recovers once the fault is gone
        client = OrisClient(*router.address, timeout=60, retries=0)
        assert client.query("qboom", fleet_stack["core"]) != ""
        assert router.registry.value("fleet.partial_results") >= 1
