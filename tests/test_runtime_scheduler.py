"""Fault-injection tests for the resilient runtime (repro.runtime).

The acceptance bar: with a worker killed mid-run the comparison completes
with HSP output identical to the serial engine's, and a run resumed from
its checkpoint journal produces the same result while skipping all
previously completed ranges.
"""

from __future__ import annotations

import json
import signal

import pytest

from repro.core import OrisEngine, OrisParams
from repro.core.parallel import FaultSpec, plan_ranges
from repro.runtime import CheckpointCorrupt, TaskPoisoned
from repro.runtime.scheduler import RuntimeConfig, compare_resilient

N_WORKERS = 2
TASKS_PER_WORKER = 3


@pytest.fixture(scope="module")
def serial_lines(est_pair):
    res = OrisEngine(OrisParams()).compare(*est_pair)
    return [r.to_line() for r in res.records]


@pytest.fixture(scope="module")
def n_tasks_for(est_pair):
    """Actual task count the balanced planner produces for a target.

    The balanced split may return fewer tasks than requested (its
    max-cost bound), so count assertions must use the real plan, not
    the ``n_workers * tasks_per_worker`` target.
    """
    engine = OrisEngine(OrisParams())
    i1, i2 = engine._build_indexes(*est_pair)
    common = i1.common_codes(i2)

    def _n_tasks(target: int) -> int:
        return len(plan_ranges(common, target, OrisParams()))

    return _n_tasks


@pytest.fixture(scope="module")
def mid_range_lo(est_pair):
    """The start of a middle range task, for targeted fault injection.

    Must use the same planner (and target) as the runs under test, so
    the injected fault lands on a real task boundary.
    """
    engine = OrisEngine(OrisParams())
    i1, i2 = engine._build_indexes(*est_pair)
    common = i1.common_codes(i2)
    ranges = plan_ranges(common, N_WORKERS * TASKS_PER_WORKER, OrisParams())
    assert len(ranges) >= 3  # the fault/resume tests need a middle task
    return ranges[len(ranges) // 2][0]


def lines(result) -> list[str]:
    return [r.to_line() for r in result.records]


class TestHealthyRuns:
    def test_identical_to_serial(self, est_pair, serial_lines):
        res = compare_resilient(
            *est_pair,
            OrisParams(),
            RuntimeConfig(n_workers=N_WORKERS, tasks_per_worker=TASKS_PER_WORKER),
        )
        assert lines(res) == serial_lines
        c = res.counters
        assert (c.n_retries, c.n_crashes, c.n_timeouts) == (0, 0, 0)
        assert (c.n_quarantined, c.n_skipped_tasks, c.n_resumed) == (0, 0, 0)

    def test_single_worker_serial_mode(self, est_pair, serial_lines):
        res = compare_resilient(
            *est_pair, OrisParams(), RuntimeConfig(n_workers=1)
        )
        assert lines(res) == serial_lines

    def test_both_strand_rejected(self, est_pair):
        with pytest.raises(ValueError):
            compare_resilient(*est_pair, OrisParams(strand="both"))

    def test_unordered_cutoff_rejected(self, est_pair):
        with pytest.raises(ValueError, match="ordered-seed cutoff"):
            compare_resilient(*est_pair, OrisParams(ordered_cutoff=False))

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            RuntimeConfig(resume=True)


class TestFaultRecovery:
    """Crash/raise/hang a worker once; the run must still be exact."""

    def test_worker_hard_crash_recovers(
        self, est_pair, serial_lines, mid_range_lo, tmp_path
    ):
        fault = FaultSpec(
            lo=mid_range_lo, mode="exit", times=1, marker=str(tmp_path / "m")
        )
        res = compare_resilient(
            *est_pair,
            OrisParams(),
            RuntimeConfig(
                n_workers=N_WORKERS,
                tasks_per_worker=TASKS_PER_WORKER,
                fault=fault,
            ),
        )
        assert lines(res) == serial_lines
        assert res.counters.n_crashes >= 1
        assert res.counters.n_retries >= 1

    def test_worker_exception_recovers(
        self, est_pair, serial_lines, mid_range_lo, tmp_path
    ):
        fault = FaultSpec(
            lo=mid_range_lo, mode="raise", times=1, marker=str(tmp_path / "m")
        )
        res = compare_resilient(
            *est_pair,
            OrisParams(),
            RuntimeConfig(
                n_workers=N_WORKERS,
                tasks_per_worker=TASKS_PER_WORKER,
                fault=fault,
            ),
        )
        assert lines(res) == serial_lines
        assert res.counters.n_retries >= 1
        assert res.counters.n_crashes == 0

    def test_hung_worker_times_out_and_recovers(
        self, est_pair, serial_lines, mid_range_lo, tmp_path
    ):
        fault = FaultSpec(
            lo=mid_range_lo,
            mode="hang",
            times=1,
            marker=str(tmp_path / "m"),
            hang_seconds=60.0,
        )
        res = compare_resilient(
            *est_pair,
            OrisParams(),
            RuntimeConfig(
                n_workers=N_WORKERS,
                tasks_per_worker=TASKS_PER_WORKER,
                fault=fault,
                task_timeout=1.0,
            ),
        )
        assert lines(res) == serial_lines
        assert res.counters.n_timeouts >= 1

    def test_pool_unhealthy_degrades_to_serial(
        self, est_pair, serial_lines, mid_range_lo, tmp_path
    ):
        fault = FaultSpec(
            lo=mid_range_lo, mode="exit", times=1, marker=str(tmp_path / "m")
        )
        with pytest.warns(RuntimeWarning, match="unhealthy"):
            res = compare_resilient(
                *est_pair,
                OrisParams(),
                RuntimeConfig(
                    n_workers=N_WORKERS,
                    tasks_per_worker=TASKS_PER_WORKER,
                    fault=fault,
                    max_pool_failures=0,
                ),
            )
        assert lines(res) == serial_lines
        assert res.counters.n_crashes == 1
        assert res.counters.n_degraded >= 1

    def test_poisoned_task_is_quarantined_not_fatal(
        self, est_pair, serial_lines, mid_range_lo, tmp_path
    ):
        # The fault never stops firing: retries and the in-parent
        # quarantine attempt all fail; the run degrades instead of dying.
        fault = FaultSpec(
            lo=mid_range_lo, mode="raise", times=100, marker=str(tmp_path / "m")
        )
        with pytest.warns(RuntimeWarning, match="dropped"):
            res = compare_resilient(
                *est_pair,
                OrisParams(),
                RuntimeConfig(
                    n_workers=N_WORKERS,
                    tasks_per_worker=TASKS_PER_WORKER,
                    fault=fault,
                    max_retries=1,
                    backoff_base=0.01,
                ),
            )
        assert res.counters.n_quarantined == 1
        assert res.counters.n_skipped_tasks == 1
        assert len(res.records) <= len(serial_lines)

    def test_strict_mode_raises_on_poison(
        self, est_pair, mid_range_lo, tmp_path
    ):
        fault = FaultSpec(
            lo=mid_range_lo, mode="raise", times=100, marker=str(tmp_path / "m")
        )
        with pytest.raises(TaskPoisoned):
            compare_resilient(
                *est_pair,
                OrisParams(),
                RuntimeConfig(
                    n_workers=1,  # serial mode exercises the inline path
                    fault=fault,
                    max_retries=1,
                    backoff_base=0.01,
                    strict=True,
                ),
            )


class TestCheckpointResume:
    def _run(self, est_pair, ckpt, resume=False, n_workers=1):
        return compare_resilient(
            *est_pair,
            OrisParams(),
            RuntimeConfig(
                n_workers=n_workers,
                tasks_per_worker=TASKS_PER_WORKER,
                checkpoint_dir=str(ckpt),
                resume=resume,
            ),
        )

    def test_full_resume_skips_everything(
        self, est_pair, serial_lines, tmp_path, n_tasks_for
    ):
        ckpt = tmp_path / "ckpt"
        first = self._run(est_pair, ckpt, n_workers=N_WORKERS)
        assert lines(first) == serial_lines
        again = self._run(est_pair, ckpt, resume=True, n_workers=N_WORKERS)
        assert lines(again) == serial_lines
        assert again.counters.n_resumed == n_tasks_for(
            N_WORKERS * TASKS_PER_WORKER
        )

    def test_partial_resume_completes_the_rest(
        self, est_pair, serial_lines, tmp_path, n_tasks_for
    ):
        ckpt = tmp_path / "ckpt"
        self._run(est_pair, ckpt)  # n_workers=1 -> up to TASKS_PER_WORKER tasks
        journal = ckpt / "journal.jsonl"
        kept = journal.read_text().splitlines()[:2]  # header + 1 task
        journal.write_text("\n".join(kept) + "\n")
        res = self._run(est_pair, ckpt, resume=True)
        assert lines(res) == serial_lines
        assert res.counters.n_resumed == 1
        # The journal was re-completed: every task is recorded again.
        n_lines = len(journal.read_text().splitlines())
        assert n_lines == 1 + n_tasks_for(TASKS_PER_WORKER)

    def test_resume_after_simulated_kill_mid_append(
        self, est_pair, serial_lines, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        self._run(est_pair, ckpt)
        journal = ckpt / "journal.jsonl"
        rows = journal.read_text().splitlines()
        torn = "\n".join(rows[:3]) + "\n" + rows[3][: len(rows[3]) // 2]
        journal.write_text(torn)  # SIGKILL mid-append: half a JSON line
        res = self._run(est_pair, ckpt, resume=True)
        assert lines(res) == serial_lines
        assert res.counters.n_resumed == 2

    def test_resume_rejects_foreign_fingerprint(self, est_pair, tmp_path):
        ckpt = tmp_path / "ckpt"
        self._run(est_pair, ckpt)
        with pytest.raises(CheckpointCorrupt, match="fingerprint"):
            compare_resilient(
                *est_pair,
                OrisParams(w=10),  # different parameters, same journal
                RuntimeConfig(
                    n_workers=1,
                    tasks_per_worker=TASKS_PER_WORKER,
                    checkpoint_dir=str(ckpt),
                    resume=True,
                ),
            )

    def test_corrupt_chunk_is_recomputed(
        self, est_pair, serial_lines, tmp_path, n_tasks_for
    ):
        ckpt = tmp_path / "ckpt"
        self._run(est_pair, ckpt)
        journal = ckpt / "journal.jsonl"
        first_task = json.loads(journal.read_text().splitlines()[1])
        chunk = ckpt / first_task["file"]
        blob = bytearray(chunk.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="checksum"):
            res = self._run(est_pair, ckpt, resume=True)
        assert lines(res) == serial_lines
        assert res.counters.n_resumed == n_tasks_for(TASKS_PER_WORKER) - 1

    def test_resume_without_journal_starts_fresh(
        self, est_pair, serial_lines, tmp_path
    ):
        with pytest.warns(RuntimeWarning, match="starting fresh"):
            res = self._run(est_pair, tmp_path / "empty", resume=True)
        assert lines(res) == serial_lines
        assert res.counters.n_resumed == 0


class TestGracefulShutdown:
    """ShutdownRequest / signal_shutdown: the SIGTERM drain path.

    Full process-level signal delivery is covered by
    ``scripts/ci_resume_smoke.py``; these tests exercise the in-process
    mechanics directly.
    """

    def test_pre_tripped_stop_interrupts_immediately(self, est_pair, tmp_path):
        from repro.runtime.errors import RunInterrupted
        from repro.runtime.scheduler import ShutdownRequest

        stop = ShutdownRequest()
        stop.trip(signal.SIGTERM)
        with pytest.raises(RunInterrupted) as exc_info:
            compare_resilient(
                *est_pair,
                OrisParams(),
                RuntimeConfig(
                    n_workers=N_WORKERS,
                    tasks_per_worker=TASKS_PER_WORKER,
                    checkpoint_dir=str(tmp_path / "ckpt"),
                ),
                stop=stop,
            )
        assert exc_info.value.signum == signal.SIGTERM
        assert "SIGTERM" in str(exc_info.value)
        assert "--resume" in str(exc_info.value)

    def test_interrupted_run_journal_resumes_exactly(
        self, est_pair, serial_lines, tmp_path
    ):
        from repro.runtime.errors import RunInterrupted
        from repro.runtime.scheduler import ShutdownRequest

        ckpt = tmp_path / "ckpt"
        stop = ShutdownRequest()
        stop.trip(signal.SIGTERM)
        with pytest.raises(RunInterrupted):
            compare_resilient(
                *est_pair,
                OrisParams(),
                RuntimeConfig(
                    n_workers=N_WORKERS,
                    tasks_per_worker=TASKS_PER_WORKER,
                    checkpoint_dir=str(ckpt),
                ),
                stop=stop,
            )
        # The journal header must exist and the resumed run must complete
        # with output identical to an uninterrupted serial comparison.
        assert (ckpt / "journal.jsonl").is_file()
        res = compare_resilient(
            *est_pair,
            OrisParams(),
            RuntimeConfig(
                n_workers=N_WORKERS,
                tasks_per_worker=TASKS_PER_WORKER,
                checkpoint_dir=str(ckpt),
                resume=True,
            ),
        )
        assert lines(res) == serial_lines

    def test_serial_path_honours_stop(self, est_pair, tmp_path):
        from repro.runtime.errors import RunInterrupted
        from repro.runtime.scheduler import ShutdownRequest

        stop = ShutdownRequest()
        stop.trip(signal.SIGINT)
        with pytest.raises(RunInterrupted) as exc_info:
            compare_resilient(
                *est_pair,
                OrisParams(),
                RuntimeConfig(n_workers=1),
                stop=stop,
            )
        assert exc_info.value.signum == signal.SIGINT

    def test_signal_shutdown_trips_and_restores(self):
        from repro.runtime.scheduler import ShutdownRequest, signal_shutdown

        previous = signal.getsignal(signal.SIGTERM)
        stop = ShutdownRequest()
        with signal_shutdown(stop):
            assert signal.getsignal(signal.SIGTERM) is not previous
            signal.raise_signal(signal.SIGTERM)
            assert stop.is_set()
            assert stop.signum == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_run_interrupted_exit_code(self):
        from repro.runtime.errors import (
            EXIT_INTERRUPTED,
            RunInterrupted,
            exit_code_for,
        )

        exc = RunInterrupted("stop", signum=signal.SIGTERM, n_completed=3)
        assert exit_code_for(exc) == EXIT_INTERRUPTED == 130
