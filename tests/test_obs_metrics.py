"""Property tests for the observability layer (repro.obs).

The load-bearing property: per-worker registries merged in *any* order
and under *any* partition of the underlying events equal the registry
that saw every event serially.  The parallel and resilient runtimes rely
on this when they ship per-task metrics through the scheduler's result
path and merge them in completion order, which varies run to run.

``"last"``-mode gauges are the documented exception (merge order decides
which value wins) and are excluded from the order-invariance property.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Histogram,
    MetricsRegistry,
    check_funnel,
    configure_tracing,
    disable_tracing,
    format_funnel,
    maybe_profile,
    merged_report,
    profile_files,
    profile_into,
    read_trace,
    span,
)

# --------------------------------------------------------------------- #
# Event strategies
# --------------------------------------------------------------------- #

_NAMES = st.sampled_from(["a", "b.c", "step2.x", "q"])
# Integers keep float arithmetic exact, so serial == merged is equality,
# not approximation.
_INT = st.integers(-(10**6), 10**6)
_POS = st.integers(1, 10**9)

_EVENT = st.one_of(
    st.tuples(st.just("inc"), _NAMES, st.integers(0, 10**6)),
    st.tuples(st.just("gauge_max"), _NAMES, _INT),
    st.tuples(st.just("gauge_min"), _NAMES, _INT),
    st.tuples(st.just("gauge_sum"), _NAMES, st.integers(0, 10**6)),
    st.tuples(st.just("observe"), _NAMES, _INT),
)


def _apply(registry: MetricsRegistry, event) -> None:
    kind, name, value = event
    if kind == "inc":
        registry.inc(f"c.{name}", value)
    elif kind == "observe":
        registry.observe(f"h.{name}", value)
    else:
        mode = kind.removeprefix("gauge_")
        registry.set_gauge(f"g.{mode}.{name}", float(value), mode=mode)


def _replay(events) -> MetricsRegistry:
    registry = MetricsRegistry()
    for event in events:
        _apply(registry, event)
    return registry


class TestMergeInvariance:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(
        events=st.lists(_EVENT, max_size=60),
        assignment=st.lists(st.integers(0, 4), max_size=60),
        merge_order=st.permutations(list(range(5))),
    )
    def test_any_partition_any_order_equals_serial(
        self, events, assignment, merge_order
    ):
        serial = _replay(events)
        # Partition the event stream over five "workers" (hypothesis picks
        # the assignment), then merge the workers in an arbitrary order.
        parts = [MetricsRegistry() for _ in range(5)]
        for i, event in enumerate(events):
            worker = assignment[i] if i < len(assignment) else 0
            _apply(parts[worker], event)
        merged = MetricsRegistry()
        for k in merge_order:
            merged.merge(parts[k])
        assert merged == serial
        assert merged.as_dict() == serial.as_dict()

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(events=st.lists(_EVENT, max_size=40))
    def test_roundtrip_and_pickle(self, events):
        serial = _replay(events)
        assert MetricsRegistry.from_dict(serial.as_dict()) == serial
        assert MetricsRegistry.from_dict(json.loads(serial.to_json())) == serial
        assert pickle.loads(pickle.dumps(serial)) == serial

    def test_last_gauge_is_merge_order_dependent(self):
        a = MetricsRegistry()
        a.set_gauge("g", 1.0)
        b = MetricsRegistry()
        b.set_gauge("g", 2.0)
        ab = MetricsRegistry().merge(a).merge(b)
        ba = MetricsRegistry().merge(b).merge(a)
        assert ab.value("g") == 2.0
        assert ba.value("g") == 1.0

    def test_merge_none_is_noop(self):
        r = MetricsRegistry()
        r.inc("c", 3)
        before = r.as_dict()
        assert r.merge(None) is r
        assert r.as_dict() == before


class TestHistogramInvariants:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(values=st.lists(st.one_of(_INT, _POS), max_size=80))
    def test_bucket_accounting(self, values):
        h = Histogram()
        for v in values:
            h.record(v)
        assert h.count == len(values)
        assert sum(h.counts.values()) + h.n_nonpositive == h.count
        positives = [v for v in values if v > 0]
        if positives:
            assert h.vmin == min(positives)
            assert h.vmax == max(positives)
            for key, n in h.counts.items():
                lo, hi = Histogram.bucket_bounds(key)
                assert n == sum(1 for v in positives if lo <= v < hi)
            assert h.mean == pytest.approx(sum(positives) / len(positives))
        else:
            assert h.vmin is None and h.vmax is None and h.mean is None

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(
        values=st.lists(st.one_of(_INT, _POS), max_size=80),
        split=st.integers(0, 80),
    )
    def test_merge_equals_serial(self, values, split):
        split = min(split, len(values))
        serial = Histogram()
        for v in values:
            serial.record(v)
        left, right = Histogram(), Histogram()
        for v in values[:split]:
            left.record(v)
        # Bulk path on one side so scalar and vectorised recording are
        # exercised against each other.
        right.record_array(values[split:])
        left.merge(right)
        assert left == serial

    def test_bucket_bounds_contain_value(self):
        for v in (0.001, 0.5, 1, 1.5, 2, 3, 1024, 10**9):
            lo, hi = Histogram.bucket_bounds(Histogram.bucket_of(v))
            assert lo <= v < hi


class TestFunnelChecks:
    def test_empty_registry_has_no_violations(self):
        assert check_funnel(MetricsRegistry()) == []

    def test_violation_detected(self):
        r = MetricsRegistry()
        r.inc("step2.hit_pairs", 10)
        r.inc("step2.extensions_started", 11)  # more extensions than hits
        violations = check_funnel(r)
        assert violations, "inconsistent funnel not flagged"

    def test_format_funnel_mentions_aborts(self):
        r = MetricsRegistry()
        r.inc("step2.extensions_started", 5)
        r.inc("step2.cutoff_aborts_left", 3)
        r.inc("step2.cutoff_aborts_right", 1)
        r.inc("step2.hsps_kept", 1)
        text = format_funnel(r)
        assert "cutoff aborts" in text
        assert "left=3 right=1" in text


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #


class TestTracing:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        disable_tracing()

    def test_disabled_span_is_noop(self, tmp_path):
        disable_tracing()
        with span("quiet", foo=1) as s:
            s.set(bar=2)
        assert list(tmp_path.iterdir()) == []

    def test_nested_spans_record_parent_and_depth(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        configure_tracing(trace)
        with span("outer", stage=1):
            with span("inner") as s:
                s.set(n=7)
        disable_tracing()
        events = read_trace(trace)
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner, outer = events
        assert inner["parent"] == outer["span"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["parent"] is None
        assert inner["attrs"]["n"] == 7
        assert outer["attrs"]["stage"] == 1
        for e in events:
            assert e["dur"] >= 0.0
            assert e["pid"] > 0

    def test_every_line_is_valid_json(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        configure_tracing(trace)
        for i in range(20):
            with span("work", i=i):
                pass
        disable_tracing()
        with open(trace, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 20
        for line in lines:
            json.loads(line)

    def test_exception_still_emits_span(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        configure_tracing(trace)
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        disable_tracing()
        assert [e["name"] for e in read_trace(trace)] == ["doomed"]


# --------------------------------------------------------------------- #
# Profiling
# --------------------------------------------------------------------- #


def _busy() -> int:
    return sum(i * i for i in range(20_000))


class TestProfiling:
    def test_profile_into_dumps_pstats(self, tmp_path):
        with profile_into(tmp_path, "unit"):
            _busy()
        files = profile_files(tmp_path)
        assert len(files) == 1
        assert "unit" in files[0]

    def test_merged_report(self, tmp_path):
        for label in ("one", "two"):
            with profile_into(tmp_path, label):
                _busy()
        report = merged_report(tmp_path, top=10)
        assert report is not None
        assert "_busy" in report
        assert "2 dump(s)" in report

    def test_merged_report_empty_dir(self, tmp_path):
        assert merged_report(tmp_path) is None

    def test_maybe_profile_none_is_noop(self, tmp_path):
        with maybe_profile("none", tmp_path, "x"):
            pass
        with maybe_profile(None, tmp_path, "x"):
            pass
        assert profile_files(tmp_path) == []

    def test_maybe_profile_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError):
            with maybe_profile("perf", tmp_path, "x"):
                pass
