"""Funnel identities under the vector kernel: serial, per-task, merged.

:func:`repro.obs.check_funnel` encodes the step-2 accounting identities
(every hit pair starts one extension; every extension ends in exactly one
bucket).  The vector kernel reports its funnel contributions from
compacted per-chunk summaries rather than per-lane masks, so this module
asserts the identities hold wherever the kernel runs:

* a serial engine run (and equality with the scalar kernel's funnel);
* every individual range task of the parallel decomposition;
* the additive merge of all range tasks (equal to the serial funnel);
* range tasks round-tripped through the checkpoint journal -- the
  ``--resume`` path must restore funnel metrics JSON-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.evalue import karlin_params
from repro.align.scoring import ScoringScheme
from repro.core import OrisEngine, OrisParams
from repro.core.parallel import (
    build_range_payload,
    merge_range_results,
    run_range,
    split_code_ranges,
)
from repro.io.bank import Bank
from repro.obs import MetricsRegistry, check_funnel, funnel_dict
from repro.runtime.checkpoint import CheckpointJournal
from repro.core.engine import WorkCounters

_TEXT = st.text(alphabet="ACGTacgtN", min_size=20, max_size=120)


def _payload(b1: Bank, b2: Bank, params: OrisParams):
    engine = OrisEngine(params)
    i1, i2 = engine._build_indexes(b1, b2)
    common = i1.common_codes(i2)
    threshold = engine._resolve_hsp_min_score(
        b1, b2, karlin_params(params.scoring)
    )
    return build_range_payload(i1, i2, common, params, threshold)


class TestSerialFunnel:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(s1=_TEXT, s2=_TEXT, w=st.sampled_from([4, 5, 6]), ordered=st.booleans())
    def test_vector_funnel_balances_and_matches_scalar(self, s1, s2, w, ordered):
        b1 = Bank.from_strings([("a", s1)])
        b2 = Bank.from_strings([("b", s2)])
        scoring = ScoringScheme(match=1, mismatch=2, xdrop_ungapped=8)
        funnels = {}
        for kernel in ("vector", "scalar"):
            params = OrisParams(
                w=w,
                scoring=scoring,
                filter_kind="none",
                hsp_min_score=scoring.seed_score(w) + 1,
                ordered_cutoff=ordered,
                kernel=kernel,
            )
            registry = MetricsRegistry()
            OrisEngine(params).hsp_table(b1, b2, registry)
            assert check_funnel(registry) == [], kernel
            funnels[kernel] = funnel_dict(registry)
        assert funnels["vector"] == funnels["scalar"]


class TestParallelFunnel:
    @pytest.fixture(scope="class")
    def workload(self, est_pair):
        params = OrisParams(kernel="vector")
        payload = _payload(*est_pair, params)
        serial = MetricsRegistry()
        OrisEngine(params).hsp_table(*est_pair, serial)
        return payload, serial

    def test_every_task_funnel_balances(self, workload):
        payload, _ = workload
        results = [
            run_range(payload, lo, hi)
            for lo, hi in split_code_ranges(payload.n_codes, 5)
        ]
        for res in results:
            assert res.metrics is not None
            assert check_funnel(res.metrics) == []

    def test_merged_funnel_equals_serial(self, workload):
        payload, serial = workload
        results = [
            run_range(payload, lo, hi)
            for lo, hi in split_code_ranges(payload.n_codes, 5)
        ]
        merged = MetricsRegistry()
        merge_range_results(results, WorkCounters(), merged)
        assert check_funnel(merged) == []
        want = funnel_dict(serial)
        got = funnel_dict(merged)
        for name in got:
            if name.startswith("step2.") and name != "step2.seeds_enumerated":
                assert got[name] == want[name], name
        # seeds_enumerated counts per-task code ranges, which cover the
        # common-code space exactly once.
        assert got["step2.seeds_enumerated"] == payload.n_codes

    def test_partition_invariance(self, workload):
        # The merged funnel must not depend on how the code space splits.
        payload, _ = workload
        merged_funnels = []
        for n_tasks in (1, 3, 7):
            results = [
                run_range(payload, lo, hi)
                for lo, hi in split_code_ranges(payload.n_codes, n_tasks)
            ]
            merged = MetricsRegistry()
            merge_range_results(results, WorkCounters(), merged)
            merged_funnels.append(funnel_dict(merged))
        assert merged_funnels[0] == merged_funnels[1] == merged_funnels[2]


class TestResumeFunnelRestoration:
    def test_journal_roundtrip_is_metric_exact(self, est_pair, tmp_path):
        # Funnel counters of a resumed run must equal the uninterrupted
        # run's: the journal stores each task's registry JSON-exactly.
        payload = _payload(*est_pair, OrisParams(kernel="vector"))
        ranges = split_code_ranges(payload.n_codes, 4)
        results = [run_range(payload, lo, hi) for lo, hi in ranges]

        fingerprint = {"probe": "funnel-roundtrip"}
        journal = CheckpointJournal(tmp_path)
        journal.create(fingerprint)
        for task_id, ((lo, hi), res) in enumerate(zip(ranges, results)):
            journal.record(task_id, lo, hi, res)
        journal.close()

        restored = CheckpointJournal(tmp_path).load(fingerprint)
        assert sorted(restored) == list(range(len(ranges)))

        direct = MetricsRegistry()
        merge_range_results(results, WorkCounters(), direct)
        resumed = MetricsRegistry()
        merge_range_results(
            [restored[t] for t in sorted(restored)], WorkCounters(), resumed
        )
        assert check_funnel(resumed) == []
        assert funnel_dict(resumed) == funnel_dict(direct)
        # Beyond the funnel: every persisted metric restores exactly.
        for task_id, res in enumerate(results):
            assert restored[task_id].metrics == res.metrics
        hsps = np.concatenate([restored[t].start1 for t in sorted(restored)])
        assert np.array_equal(
            hsps, np.concatenate([r.start1 for r in results])
        )
