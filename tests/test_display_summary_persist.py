"""Tests for alignment display, result summaries, and index persistence."""

import numpy as np
import pytest

from repro.align.classic import gotoh_local
from repro.align.display import render_alignment, render_record
from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import mutate, random_dna
from repro.eval import best_hits, query_coverage, summarize
from repro.index import CsrSeedIndex, load_index, save_index
from repro.io.bank import Bank
from repro.io.m8 import M8Record


class TestRenderAlignment:
    def test_blocks_and_gutters(self, rng, scoring):
        core = random_dna(rng, 100)
        path = gotoh_local(core, core, scoring)
        text = render_alignment(path, q_offset=10, s_offset=20, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("Query  11")
        assert lines[2].startswith("Sbjct  21")
        # match line all pipes on identical sequences
        assert set(lines[1].split()[-1]) == {"|"}
        # three blocks of 40/40/20
        assert sum(1 for l in lines if l.startswith("Query")) == 3

    def test_mismatch_column_blank(self, scoring):
        s1 = "ACGTACGTACGTACGTACGT"
        s2 = "ACGTACGTTCGTACGTACGT"
        path = gotoh_local(s1, s2, scoring)
        text = render_alignment(path)
        match_line = text.splitlines()[1]
        assert " " in match_line.strip("| ") or match_line.count("|") == 19

    def test_coordinates_advance_across_blocks(self, rng, scoring):
        core = random_dna(rng, 90)
        path = gotoh_local(core, core, scoring)
        text = render_alignment(path, width=30)
        q_lines = [l for l in text.splitlines() if l.startswith("Query")]
        starts = [int(l.split()[1]) for l in q_lines]
        assert starts == [1, 31, 61]


class TestRenderRecord:
    def test_end_to_end(self, rng):
        core = random_dna(rng, 150)
        b1 = Bank.from_strings([("q", random_dna(rng, 30) + core)])
        b2 = Bank.from_strings([("s", core + random_dna(rng, 30))])
        res = OrisEngine(OrisParams()).compare(b1, b2)
        text = render_record(res.records[0], b1, b2)
        assert "Score =" in text
        assert "Query" in text and "Sbjct" in text
        assert core[:30] in text.replace("\n", " ")

    def test_minus_strand_record(self, rng):
        from repro.encoding import decode, encode, reverse_complement

        core = random_dna(rng, 120)
        rc = decode(reverse_complement(encode(core)))
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", rc)])
        res = OrisEngine(OrisParams(strand="both")).compare(b1, b2)
        rec = res.records[0]
        assert rec.minus_strand
        text = render_record(rec, b1, b2)
        assert "Minus" in text


def make_rec(q="q", qs=1, qe=100, e=1e-10, bits=100.0, minus=False):
    return M8Record(
        query_id=q, subject_id="s", pident=95.0, length=qe - qs + 1,
        mismatches=2, gap_openings=0, q_start=qs, q_end=qe,
        s_start=qe if minus else qs, s_end=qs if minus else qe,
        evalue=e, bit_score=bits,
    )


class TestSummaries:
    def test_summary_fields(self):
        recs = [make_rec(), make_rec(q="b", qs=11, qe=60)]
        s = summarize(recs)
        assert s.n_records == 2
        assert s.n_query_ids == 2
        assert s.n_subject_ids == 1
        assert s.total_aligned_columns == 100 + 50
        assert s.mean_pident == pytest.approx(95.0)
        assert "records" in s.format()

    def test_empty_summary(self):
        s = summarize([])
        assert s.n_records == 0
        assert s.min_evalue == float("inf")

    def test_minus_count(self):
        s = summarize([make_rec(minus=True), make_rec()])
        assert s.n_minus_strand == 1

    def test_best_hits(self):
        a = make_rec(e=1e-5)
        b = make_rec(e=1e-20)
        assert best_hits([a, b])["q"] is b

    def test_best_hits_tie_breaks_on_bits(self):
        a = make_rec(e=1e-5, bits=50.0)
        b = make_rec(e=1e-5, bits=80.0)
        assert best_hits([a, b])["q"] is b

    def test_query_coverage_merges_overlaps(self):
        recs = [make_rec(qs=1, qe=100), make_rec(qs=51, qe=150)]
        assert query_coverage(recs)["q"] == 150

    def test_query_coverage_disjoint(self):
        recs = [make_rec(qs=1, qe=50), make_rec(qs=101, qe=150)]
        assert query_coverage(recs)["q"] == 100


class TestIndexPersistence:
    @pytest.mark.parametrize("fmt", ["v3", "v2"])
    def test_round_trip(self, tmp_path, rng, fmt):
        bank = Bank.from_strings(
            [("a", random_dna(rng, 400)), ("b", random_dna(rng, 300))]
        )
        idx = CsrSeedIndex(bank, 9)
        path = tmp_path / "bank.idx"
        save_index(path, idx, format=fmt)
        loaded = load_index(path, verify=True)
        assert loaded.w == 9
        assert loaded.bank.names == bank.names
        assert np.array_equal(loaded.bank.seq, bank.seq)
        assert np.array_equal(loaded.positions, idx.positions)
        assert np.array_equal(loaded.unique_codes, idx.unique_codes)

    def test_loaded_index_is_usable(self, tmp_path, rng):
        core = random_dna(rng, 200)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", core)])
        i2 = CsrSeedIndex(b2, 11)
        path = tmp_path / "i2.npz"
        save_index(path, i2)
        i2b = load_index(path)
        i1 = CsrSeedIndex(b1, 11)
        cc = i1.common_codes(i2b)
        assert cc.n_pairs > 0
        # cutoff helpers work on the reloaded instance
        assert i2b.indexed_mask.any()
        assert i2b.cutoff_codes.shape == b2.seq.shape

    def test_version_check(self, tmp_path, rng):
        import json

        bank = Bank.from_strings([("a", random_dna(rng, 100))])
        idx = CsrSeedIndex(bank, 6)
        path = tmp_path / "x.npz"
        save_index(path, idx, format="v2")
        # corrupt the version
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_index(path)


class TestIndexArchiveVerification:
    """load_index must reject damaged v2 archives, never deserialise garbage."""

    def _saved(self, tmp_path, rng):
        bank = Bank.from_strings(
            [("a", random_dna(rng, 400)), ("b", random_dna(rng, 250))]
        )
        idx = CsrSeedIndex(bank, 8)
        path = tmp_path / "bank.idx.npz"
        save_index(path, idx, format="v2")
        return path

    def test_truncated_archive(self, tmp_path, rng):
        from repro.runtime.errors import IndexCorrupt

        path = self._saved(tmp_path, rng)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IndexCorrupt):
            load_index(path)

    def test_bit_flipped_archive(self, tmp_path, rng):
        from repro.runtime.errors import IndexCorrupt

        path = self._saved(tmp_path, rng)
        blob = bytearray(path.read_bytes())
        # Flip bytes across the middle third: whichever member they land
        # in, either the zip layer or the content CRC must catch it.
        for frac in (3, 7):
            blob[len(blob) * frac // 16] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexCorrupt):
            load_index(path)

    def test_checksum_mismatch_after_array_tamper(self, tmp_path, rng):
        import json

        from repro.runtime.errors import IndexCorrupt

        path = self._saved(tmp_path, rng)
        data = dict(np.load(path))
        pos = data["positions"].copy()
        pos[0] += 1  # one flipped position, re-zipped cleanly
        data["positions"] = pos
        meta = json.loads(bytes(data["meta"]).decode())
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(IndexCorrupt, match="checksum"):
            load_index(path)

    def test_missing_array_member(self, tmp_path, rng):
        from repro.runtime.errors import IndexCorrupt

        path = self._saved(tmp_path, rng)
        data = dict(np.load(path))
        del data["positions"]
        np.savez(path, **data)
        with pytest.raises(IndexCorrupt, match="missing"):
            load_index(path)

    def test_index_corrupt_is_a_value_error(self):
        from repro.runtime.errors import IndexCorrupt, OrisRuntimeError

        assert issubclass(IndexCorrupt, ValueError)
        assert issubclass(IndexCorrupt, OrisRuntimeError)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope.npz")


class TestV3Archive:
    """The mmap-able v3 layout: zero-copy load + checksummed damage rejection."""

    def _saved(self, tmp_path, rng, w=8):
        bank = Bank.from_strings(
            [("a", random_dna(rng, 400)), ("b", random_dna(rng, 250))]
        )
        idx = CsrSeedIndex(bank, w)
        path = tmp_path / "bank.scoris3"
        save_index(path, idx)  # v3 is the default format
        return path, idx

    def test_loaded_arrays_are_readonly_views(self, tmp_path, rng):
        path, idx = self._saved(tmp_path, rng)
        loaded = load_index(path)
        assert not loaded.positions.flags.writeable
        assert not loaded.bank.seq.flags.writeable
        # zero-copy: the arrays are views onto one mmap buffer, not copies
        assert loaded.positions.base is not None
        with pytest.raises((ValueError, RuntimeError)):
            loaded.positions[0] = 1

    def test_header_tamper_rejected(self, tmp_path, rng):
        from repro.runtime.errors import IndexCorrupt

        path, _ = self._saved(tmp_path, rng)
        blob = bytearray(path.read_bytes())
        blob[20] ^= 0xFF  # inside the JSON header
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexCorrupt, match="header checksum"):
            load_index(path)

    def test_content_tamper_rejected_with_verify(self, tmp_path, rng):
        from repro.runtime.errors import IndexCorrupt

        path, _ = self._saved(tmp_path, rng)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # inside the last array segment
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexCorrupt, match="content checksum"):
            load_index(path, verify=True)

    def test_truncation_rejected(self, tmp_path, rng):
        from repro.runtime.errors import IndexCorrupt

        path, _ = self._saved(tmp_path, rng)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IndexCorrupt, match="truncated"):
            load_index(path)

    def test_unrecognised_signature_rejected(self, tmp_path):
        from repro.runtime.errors import IndexCorrupt

        path = tmp_path / "junk"
        path.write_bytes(b"not an index archive at all")
        with pytest.raises(IndexCorrupt, match="signature"):
            load_index(path)

    def test_unknown_format_name_rejected(self, tmp_path, rng):
        bank = Bank.from_strings([("a", random_dna(rng, 100))])
        idx = CsrSeedIndex(bank, 6)
        with pytest.raises(ValueError, match="format"):
            save_index(tmp_path / "x", idx, format="v99")


class TestIndexCache:
    def _bank(self, rng, n=300):
        return Bank.from_strings([("a", random_dna(rng, n))])

    def test_miss_then_hit(self, tmp_path, rng):
        from repro.index import IndexCache

        cache = IndexCache(tmp_path / "cache")
        bank = self._bank(rng)
        first = cache.get(bank, 9)
        second = cache.get(bank, 9)
        assert (cache.misses, cache.hits) == (1, 1)
        assert np.array_equal(first.positions, second.positions)
        assert np.array_equal(first.positions, CsrSeedIndex(bank, 9).positions)

    def test_key_depends_on_content_and_params(self, tmp_path, rng):
        from repro.index import IndexCache

        cache = IndexCache(tmp_path / "cache")
        bank = self._bank(rng)
        other = self._bank(rng)
        keys = {
            cache.key(bank, 9, None),
            cache.key(bank, 11, None),
            cache.key(bank, 9, "dust"),
            cache.key(other, 9, None),
        }
        assert len(keys) == 4

    def test_corrupt_entry_self_heals(self, tmp_path, rng):
        from repro.index import IndexCache

        cache = IndexCache(tmp_path / "cache")
        bank = self._bank(rng)
        cache.get(bank, 9)
        path = cache.path_for(cache.key(bank, 9, None))
        path.write_bytes(b"ruined")
        rebuilt = cache.get(bank, 9)
        assert cache.misses == 2 and cache.hits == 0
        assert np.array_equal(rebuilt.positions, CsrSeedIndex(bank, 9).positions)
        load_index(path, verify=True)  # the healed file is valid again

    def test_record_metrics(self, tmp_path, rng):
        from repro.index import IndexCache
        from repro.obs import MetricsRegistry

        cache = IndexCache(tmp_path / "cache")
        bank = self._bank(rng)
        cache.get(bank, 9)
        cache.get(bank, 9)
        registry = MetricsRegistry()
        cache.record_metrics(registry)
        assert registry.value("index.cache_hit") == 1
        assert registry.value("index.cache_miss") == 1

    def test_engine_results_identical_with_cache(self, tmp_path, rng):
        from repro.index import IndexCache
        from repro.io.m8 import format_m8

        core = random_dna(rng, 300)
        b1 = Bank.from_strings([("q", core + random_dna(rng, 50))])
        b2 = Bank.from_strings([("s", random_dna(rng, 50) + core)])
        base = OrisEngine(OrisParams()).compare(b1, b2)
        cache = IndexCache(tmp_path / "cache")
        cold = OrisEngine(OrisParams(), index_cache=cache).compare(b1, b2)
        warm = OrisEngine(OrisParams(), index_cache=cache).compare(b1, b2)
        assert format_m8(cold.records) == format_m8(base.records)
        assert format_m8(warm.records) == format_m8(base.records)
        assert cache.hits == 2 and cache.misses == 2


class TestIndexCacheEviction:
    def _bank(self, rng, n=300):
        return Bank.from_strings([("a", random_dna(rng, n))])

    def _fill(self, cache, rng, n_banks):
        banks = [self._bank(rng) for _ in range(n_banks)]
        for bank in banks:
            cache.get(bank, 9)
        return banks

    def test_unbounded_by_default(self, tmp_path, rng):
        from repro.index import IndexCache

        cache = IndexCache(tmp_path / "cache")
        self._fill(cache, rng, 4)
        assert cache.evicted == 0
        assert len(list((tmp_path / "cache").glob("*.scoris3"))) == 4

    def test_evicts_oldest_access_first(self, tmp_path, rng):
        import os
        import time

        from repro.index import IndexCache

        cache = IndexCache(tmp_path / "cache")
        banks = self._fill(cache, rng, 3)
        paths = [cache.path_for(cache.key(b, 9, None)) for b in banks]
        one_archive = paths[0].stat().st_size
        # Order access explicitly (atime granularity can be coarse).
        now = time.time()
        for i, path in enumerate(paths):
            os.utime(path, (now + i, now + i))
        # Cap fits exactly two archives; storing a fourth must evict the
        # least recently used one (banks[0]) and only that one.
        cache.max_bytes = 2 * one_archive + one_archive // 2
        fourth = self._bank(rng)
        cache.get(fourth, 9)
        assert cache.evicted == 2  # down to cap: the two oldest went
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists()
        assert cache.path_for(cache.key(fourth, 9, None)).exists()

    def test_hit_refreshes_recency(self, tmp_path, rng):
        import os
        import time

        from repro.index import IndexCache

        cache = IndexCache(tmp_path / "cache")
        banks = self._fill(cache, rng, 2)
        paths = [cache.path_for(cache.key(b, 9, None)) for b in banks]
        now = time.time()
        os.utime(paths[0], (now - 100, now - 100))
        os.utime(paths[1], (now - 50, now - 50))
        cache.get(banks[0], 9)  # hit: banks[0] becomes most recent
        # Cap fits two and a half archives: storing a third evicts
        # exactly one -- the least recently *accessed*.
        cache.max_bytes = int(paths[0].stat().st_size * 2.5)
        cache.get(self._bank(rng), 9)
        assert paths[0].exists()  # survived: recently used
        assert not paths[1].exists()

    def test_oversized_store_keeps_the_new_archive(self, tmp_path, rng):
        from repro.index import IndexCache

        cache = IndexCache(tmp_path / "cache", max_bytes=1)
        bank = self._bank(rng)
        index = cache.get(bank, 9)
        assert index is not None
        # The just-built archive survives its own store even though it
        # exceeds the cap; everything else would be evicted.
        assert cache.path_for(cache.key(bank, 9, None)).exists()
        other = self._bank(rng)
        cache.get(other, 9)
        assert cache.evicted == 1
        assert not cache.path_for(cache.key(bank, 9, None)).exists()

    def test_eviction_metric_recorded(self, tmp_path, rng):
        from repro.index import IndexCache
        from repro.obs import MetricsRegistry

        cache = IndexCache(tmp_path / "cache", max_bytes=1)
        self._fill(cache, rng, 2)
        registry = MetricsRegistry()
        cache.record_metrics(registry)
        assert registry.value("index.cache_evicted") == cache.evicted >= 1

    def test_rejects_nonsense_cap(self, tmp_path):
        from repro.index import IndexCache

        with pytest.raises(ValueError, match="max_bytes"):
            IndexCache(tmp_path / "cache", max_bytes=0)
