"""Tests for the BLASTN-like and BLAT-like baselines."""

import numpy as np
import pytest

from repro.baselines import BlastnEngine, BlastnParams, BlatEngine, BlatParams
from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import mutate, random_dna
from repro.eval import compare_outputs
from repro.io.bank import Bank


def record_keys(result):
    return set(
        (r.query_id, r.subject_id, r.q_start, r.q_end, r.s_start, r.s_end)
        for r in result.records
    )


class TestBlastnBaseline:
    def test_finds_implanted_homology(self, rng):
        core = random_dna(rng, 150)
        b1 = Bank.from_strings([("q", random_dna(rng, 40) + core)])
        b2 = Bank.from_strings([("s", core + random_dna(rng, 60))])
        res = BlastnEngine(BlastnParams()).compare(b1, b2)
        assert len(res.records) >= 1
        assert res.records[0].length >= 140

    def test_agrees_with_oris(self, est_pair):
        oris = OrisEngine(OrisParams()).compare(*est_pair)
        blast = BlastnEngine(BlastnParams()).compare(*est_pair)
        rep = compare_outputs(oris.records, blast.records)
        # the engines share scoring/extension machinery: sensitivity gap
        # must be tiny both ways (paper reports a few percent vs real NCBI)
        assert rep.scoris_miss_pct < 5.0
        assert rep.blast_miss_pct < 5.0

    def test_query_batching_invariance(self, est_pair):
        per_query = BlastnEngine(BlastnParams(query_batch_nt=1)).compare(*est_pair)
        big_batch = BlastnEngine(BlastnParams(query_batch_nt=10**9)).compare(*est_pair)
        a, b = record_keys(per_query), record_keys(big_batch)
        # batching changes scan partitioning, not which HSPs exist
        assert len(a ^ b) <= max(2, len(a) // 50)

    def test_more_batches_more_scan_work(self, est_pair):
        import time

        b1, b2 = est_pair
        t0 = time.perf_counter()
        BlastnEngine(BlastnParams(query_batch_nt=1)).compare(b1, b2)
        t_many = time.perf_counter() - t0
        t0 = time.perf_counter()
        BlastnEngine(BlastnParams(query_batch_nt=10**9)).compare(b1, b2)
        t_one = time.perf_counter() - t0
        # one batch must be substantially cheaper than per-query batches
        assert t_one < t_many

    def test_two_hit_mode_reduces_extensions(self, est_pair):
        one = BlastnEngine(BlastnParams()).compare(*est_pair)
        two = BlastnEngine(BlastnParams(two_hit=True)).compare(*est_pair)
        assert two.counters.ungapped_steps <= one.counters.ungapped_steps

    def test_two_hit_retains_strong_alignments(self, rng):
        core = random_dna(rng, 300)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mutate(rng, core, sub_rate=0.02, indel_rate=0.0))])
        res = BlastnEngine(BlastnParams(two_hit=True)).compare(b1, b2)
        assert len(res.records) >= 1

    def test_no_homology(self, rng):
        b1 = Bank.from_strings([("q", random_dna(rng, 1500))])
        b2 = Bank.from_strings([("s", random_dna(np.random.default_rng(5), 1500))])
        res = BlastnEngine(BlastnParams()).compare(b1, b2)
        assert res.records == []

    def test_minus_strand(self, rng):
        from repro.encoding import decode, encode, reverse_complement

        core = random_dna(rng, 200)
        rc = decode(reverse_complement(encode(core)))
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", rc)])
        plus = BlastnEngine(BlastnParams(strand="plus")).compare(b1, b2)
        both = BlastnEngine(BlastnParams(strand="both")).compare(b1, b2)
        assert len(plus.records) == 0
        assert len(both.records) >= 1
        assert both.records[0].minus_strand

    def test_params_validation(self):
        with pytest.raises(ValueError):
            BlastnParams(strand="minus")
        with pytest.raises(ValueError):
            BlastnParams(query_batch_nt=0)

    def test_per_diagonal_skip_counts(self, est_pair):
        res = BlastnEngine(BlastnParams()).compare(*est_pair)
        # EST homology guarantees redundant hits were skipped
        assert res.counters.n_cut > 0


class TestBlatBaseline:
    def test_finds_exact_homology(self, rng):
        core = random_dna(rng, 200)
        b1 = Bank.from_strings([("q", random_dna(rng, 30) + core)])
        b2 = Bank.from_strings([("s", core + random_dna(rng, 30))])
        res = BlatEngine(BlatParams()).compare(b1, b2)
        assert len(res.records) >= 1

    def test_database_index_is_sparse(self, est_pair):
        from repro.index import CsrSeedIndex

        _, b2 = est_pair
        full = CsrSeedIndex(b2, 11)
        sparse = CsrSeedIndex(b2, 11, stride=11)
        assert sparse.n_indexed <= full.n_indexed // 10

    def test_less_sensitive_than_oris_on_diverged(self, rng):
        # Non-overlapping db words lose diverged matches (documented BLAT
        # trade-off); on heavily mutated homology ORIS >= BLAT coverage.
        total_oris = 0
        total_blat = 0
        for t in range(5):
            r = np.random.default_rng(100 + t)
            core = random_dna(r, 500)
            mut = mutate(r, core, sub_rate=0.10, indel_rate=0.0)
            b1 = Bank.from_strings([("q", core)])
            b2 = Bank.from_strings([("s", mut)])
            total_oris += sum(
                x.length for x in OrisEngine(OrisParams()).compare(b1, b2).records
            )
            total_blat += sum(
                x.length for x in BlatEngine(BlatParams()).compare(b1, b2).records
            )
        assert total_blat <= total_oris

    def test_no_homology(self, rng):
        b1 = Bank.from_strings([("q", random_dna(rng, 1000))])
        b2 = Bank.from_strings([("s", random_dna(np.random.default_rng(9), 1000))])
        assert BlatEngine(BlatParams()).compare(b1, b2).records == []
