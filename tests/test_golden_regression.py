"""Golden regression corpus: byte-exact m8 output on committed inputs.

Every case under ``tests/golden/`` is replayed through the CLI and the
output compared byte for byte against the committed ``expected.m8``.
Any drift -- a scoring change, a sort-order change, a float-formatting
change -- fails here first.  When a change is *intended*, regenerate the
corpus with ``python scripts/regen_golden.py`` and review the diff.

Each case runs under both ``--kernel scalar`` and ``--kernel vector``
against the *same* expected bytes: the committed corpus is the shared
ground truth, so a kernel that drifts fails its own parametrization.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import run

GOLDEN = Path(__file__).parent / "golden"
CASES = sorted(p.name for p in GOLDEN.iterdir() if (p / "cmd.json").is_file())


def test_corpus_present():
    assert len(CASES) >= 3, f"golden corpus incomplete: {CASES}"


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
@pytest.mark.parametrize("case", CASES)
def test_golden_output_is_byte_stable(case, kernel, tmp_path):
    case_dir = GOLDEN / case
    args = json.loads((case_dir / "cmd.json").read_text(encoding="utf-8"))["args"]
    out = tmp_path / "out.m8"
    rc = run(
        [
            str(case_dir / "bank1.fa"),
            str(case_dir / "bank2.fa"),
            "-o",
            str(out),
            "--kernel",
            kernel,
            *args,
        ]
    )
    assert rc == 0
    expected = (case_dir / "expected.m8").read_bytes()
    got = out.read_bytes()
    assert got == expected, (
        f"golden case {case!r} drifted under --kernel {kernel} "
        f"({len(got.splitlines())} vs {len(expected.splitlines())} records); "
        "if intended, regenerate with scripts/regen_golden.py"
    )


@pytest.mark.parametrize("case", CASES)
def test_golden_case_is_nontrivial(case):
    # An empty expected.m8 would make the byte comparison vacuous.
    assert (GOLDEN / case / "expected.m8").stat().st_size > 0
