"""Differential fuzzing: the engine's step-2 HSP set vs a brute-force oracle.

The oracle is deliberately naive and independent of the production path:
it finds every shared ``W``-word by dictionary lookup over the encoded
sequences, runs its own scalar x-drop extension on every hit *without*
the ordered-seed cutoff, deduplicates the resulting boxes, and applies
the ``S1`` floor.  The paper's central claim (section 2.2) is that the
ordered-seed cutoff produces exactly this set while doing strictly less
work; hypothesis probes that claim across seed widths, scoring schemes,
x-drop values, S1 thresholds, and sequences salted with ``N`` runs and
soft-masked (lower-case) stretches.

The same runs double as the funnel-consistency fuzz for the metrics
layer: every generated case must satisfy :func:`repro.obs.check_funnel`
and report a hit-pair count equal to the oracle's cartesian pair count.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.scoring import ScoringScheme
from repro.core.engine import OrisEngine
from repro.core.params import OrisParams
from repro.encoding.codes import INVALID
from repro.io.bank import Bank
from repro.obs import MetricsRegistry, check_funnel

# --------------------------------------------------------------------- #
# Brute-force oracle
# --------------------------------------------------------------------- #


def _xdrop_left(seq1, seq2, p1, p2, scoring, seed_score):
    """Best left extension of a seed at (p1, p2); no cutoff, no tricks."""
    score = maxi = seed_score
    best = 0
    q1, q2 = p1 - 1, p2 - 1
    ext = 0
    while q1 >= 0 and q2 >= 0 and maxi - score < scoring.xdrop_ungapped:
        c1, c2 = int(seq1[q1]), int(seq2[q2])
        if c1 >= INVALID or c2 >= INVALID:
            break
        if c1 == c2:
            score += scoring.match
            if score > maxi:
                maxi = score
                best = ext + 1
        else:
            score -= scoring.mismatch
        q1 -= 1
        q2 -= 1
        ext += 1
    return maxi, best


def _xdrop_right(seq1, seq2, p1, p2, w, scoring, seed_score):
    score = maxi = seed_score
    best = 0
    q1, q2 = p1 + w, p2 + w
    ext = 0
    n1, n2 = seq1.shape[0], seq2.shape[0]
    while q1 < n1 and q2 < n2 and maxi - score < scoring.xdrop_ungapped:
        c1, c2 = int(seq1[q1]), int(seq2[q2])
        if c1 >= INVALID or c2 >= INVALID:
            break
        if c1 == c2:
            score += scoring.match
            if score > maxi:
                maxi = score
                best = ext + 1
        else:
            score -= scoring.mismatch
        q1 += 1
        q2 += 1
        ext += 1
    return maxi, best


def _word_positions(seq: np.ndarray, w: int) -> dict[bytes, list[int]]:
    """Every position whose ``w``-window is all unambiguous nucleotides."""
    out: dict[bytes, list[int]] = defaultdict(list)
    for p in range(seq.shape[0] - w + 1):
        win = seq[p : p + w]
        if bool((win < INVALID).all()):
            out[win.tobytes()].append(p)
    return out


def brute_force_hsps(
    b1: Bank, b2: Bank, w: int, scoring: ScoringScheme, s1_min: int
) -> tuple[set[tuple[int, int, int, int]], int]:
    """All distinct HSP boxes with score >= s1_min, plus the hit-pair count.

    A box is ``(start1, end1, start2, score)`` in global (concatenated)
    coordinates, matching :meth:`repro.align.hsp.HSPTable.columns`.
    """
    seq1, seq2 = b1.seq, b2.seq
    words1 = _word_positions(seq1, w)
    words2 = _word_positions(seq2, w)
    seed_score = scoring.seed_score(w)
    boxes: set[tuple[int, int, int, int]] = set()
    n_pairs = 0
    for word, ps2 in words2.items():
        ps1 = words1.get(word)
        if ps1 is None:
            continue
        for p1 in ps1:
            for p2 in ps2:
                n_pairs += 1
                lmax, loff = _xdrop_left(seq1, seq2, p1, p2, scoring, seed_score)
                rmax, roff = _xdrop_right(seq1, seq2, p1, p2, w, scoring, seed_score)
                score = lmax + rmax - seed_score
                boxes.add((p1 - loff, p1 + w + roff, p2 - loff, score))
    return {b for b in boxes if b[3] >= s1_min}, n_pairs


def engine_hsps(table) -> set[tuple[int, int, int, int]]:
    s1, e1, s2, sc = table.columns()
    return {
        (int(a), int(b), int(c), int(d)) for a, b, c, d in zip(s1, e1, s2, sc)
    }


# --------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------- #

# Flanks may contain ambiguity codes and soft-masked (lower-case) bases;
# with filter_kind="none" lower-case must behave exactly like upper-case.
_NOISY = st.text(alphabet="ACGTacgtN", min_size=0, max_size=40)
_EXTRA = st.text(alphabet="ACGTacgtN", min_size=5, max_size=60)


@st.composite
def bank_pair(draw) -> tuple[list[tuple[str, str]], list[tuple[str, str]]]:
    """Two small banks sharing one (possibly mutated) core segment."""
    core = draw(st.text(alphabet="ACGT", min_size=10, max_size=50))
    s1 = draw(_NOISY) + core + draw(_NOISY)
    mut = list(core)
    n_mut = draw(st.integers(0, max(0, len(core) // 8)))
    for _ in range(n_mut):
        i = draw(st.integers(0, len(core) - 1))
        mut[i] = draw(st.sampled_from("ACGTN"))
    s2 = draw(_NOISY) + "".join(mut) + draw(_NOISY)
    seqs1 = [s1] + draw(st.lists(_EXTRA, max_size=2))
    seqs2 = [s2] + draw(st.lists(_EXTRA, max_size=2))
    return (
        [(f"q{i}", s) for i, s in enumerate(seqs1)],
        [(f"s{i}", s) for i, s in enumerate(seqs2)],
    )


_PARAMS = {
    "pair": bank_pair(),
    "w": st.sampled_from([4, 5, 6]),
    "mismatch": st.sampled_from([2, 3]),
    "xdrop": st.integers(4, 16),
    "s1_extra": st.integers(1, 10),
}


def _run_engine(pair, w, mismatch, xdrop, s1_extra, *, ordered_cutoff=True):
    recs1, recs2 = pair
    b1 = Bank.from_strings(recs1)
    b2 = Bank.from_strings(recs2)
    scoring = ScoringScheme(match=1, mismatch=mismatch, xdrop_ungapped=xdrop)
    s1_min = scoring.seed_score(w) + s1_extra
    params = OrisParams(
        w=w,
        scoring=scoring,
        filter_kind="none",
        hsp_min_score=s1_min,
        ordered_cutoff=ordered_cutoff,
    )
    registry = MetricsRegistry()
    table = OrisEngine(params).hsp_table(b1, b2, registry)
    return b1, b2, scoring, s1_min, table, registry


# --------------------------------------------------------------------- #
# The differential tests (>= 200 generated cases between them)
# --------------------------------------------------------------------- #


class TestDifferential:
    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(**_PARAMS)
    def test_ordered_cutoff_equals_brute_force(
        self, pair, w, mismatch, xdrop, s1_extra
    ):
        b1, b2, scoring, s1_min, table, registry = _run_engine(
            pair, w, mismatch, xdrop, s1_extra
        )
        want, n_pairs = brute_force_hsps(b1, b2, w, scoring, s1_min)
        assert engine_hsps(table) == want
        # Funnel bookkeeping must agree with the oracle's raw hit count
        # and be internally consistent on every generated input.
        assert check_funnel(registry) == []
        assert registry.value("step2.hit_pairs") == n_pairs
        hits = registry.value("step2.hit_pairs")
        exts = registry.value("step2.extensions_started")
        kept = registry.value("step2.hsps_kept")
        assert hits >= exts >= kept
        aborts = registry.value("step2.cutoff_aborts_left") + registry.value(
            "step2.cutoff_aborts_right"
        )
        sub_s1 = registry.value("step2.dropped_below_s1")
        assert aborts + kept + sub_s1 == exts

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(**_PARAMS)
    def test_dedup_ablation_equals_brute_force(
        self, pair, w, mismatch, xdrop, s1_extra
    ):
        # With the cutoff off the engine extends every duplicate and
        # deduplicates explicitly -- the oracle's strategy verbatim.
        b1, b2, scoring, s1_min, table, registry = _run_engine(
            pair, w, mismatch, xdrop, s1_extra, ordered_cutoff=False
        )
        want, n_pairs = brute_force_hsps(b1, b2, w, scoring, s1_min)
        assert engine_hsps(table) == want
        assert check_funnel(registry) == []
        assert registry.value("step2.hit_pairs") == n_pairs
        # No cutoff: every extension runs to completion.
        assert registry.value("step2.cutoff_aborts_left") == 0
        assert registry.value("step2.cutoff_aborts_right") == 0
