"""Tests for ungapped extension and the ordered-seed cutoff (paper 2.2).

Includes the paper's own worked example: the HSP anchored by AACTGTAA is
also reachable from AATTGCTC; since codeSEED(AACTGTAA) <
codeSEED(AATTGCTC), only the former may generate it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.scoring import ScoringScheme
from repro.align.ungapped import (
    CUTOFF,
    batch_extend,
    extend_hit_ref,
    extend_left_ref,
    extend_right_ref,
)
from repro.data.synthetic import mutate, random_dna
from repro.encoding import code_of_word, seed_codes
from repro.index import CsrSeedIndex
from repro.io.bank import Bank


def banks_for(s1: str, s2: str) -> tuple[Bank, Bank]:
    return Bank.from_strings([("a", s1)]), Bank.from_strings([("b", s2)])


def all_hits(b1: Bank, b2: Bank, w: int):
    """All (p1, p2, code) hit pairs, ascending code order."""
    i1, i2 = CsrSeedIndex(b1, w, None), CsrSeedIndex(b2, w, None)
    cc = i1.common_codes(i2)
    out = []
    for k in range(cc.n_codes):
        ps1 = i1.positions[cc.start1[k] : cc.start1[k] + cc.count1[k]]
        ps2 = i2.positions[cc.start2[k] : cc.start2[k] + cc.count2[k]]
        for a in ps1:
            for b in ps2:
                out.append((int(a), int(b), int(cc.codes[k])))
    return out, i1


class TestPaperExample:
    """Section 2.2's duplicate-HSP illustration."""

    S1 = "ATATGATGTGCAACTGTAATTGCTCAGATTCTATG"
    S2 = "ATATGATGTGCAACTGTAATTGCTCAGGTTCTCTG"

    def test_seed_order(self):
        assert code_of_word("AACTGTAA") < code_of_word("AATTGCTC")

    def test_higher_seed_cut_off(self):
        # The paper's illustrated pair: AATTGCTC must never generate the
        # HSP because AACTGTAA (lower code) anchors it too.
        b1, b2 = banks_for(self.S1, self.S2)
        codes1 = seed_codes(b1.seq, 8)
        p = 1 + self.S1.index("AATTGCTC")
        res = extend_hit_ref(b1.seq, b2.seq, codes1, p, p, 8, ScoringScheme())
        assert res is CUTOFF

    def test_generator_is_lowest_code_seed(self):
        # Going beyond the paper's prose: the one seed on diagonal 0 that
        # survives the cutoff must be the seed with the LOWEST code among
        # all fully-matched windows of the HSP.
        b1, b2 = banks_for(self.S1, self.S2)
        hits, i1 = all_hits(b1, b2, 8)
        sc = ScoringScheme()
        survivors = []
        for p1, p2, c in hits:
            if p2 - p1 != 0:
                continue
            r = extend_hit_ref(b1.seq, b2.seq, i1.codes_at, p1, p2, 8, sc)
            if r is not None:
                survivors.append((p1, c))
        assert len(survivors) == 1
        diag0_codes = [c for p1, p2, c in hits if p2 - p1 == 0]
        assert survivors[0][1] == min(diag0_codes)

    def test_exactly_one_generator_for_the_hsp(self):
        b1, b2 = banks_for(self.S1, self.S2)
        hits, i1 = all_hits(b1, b2, 8)
        sc = ScoringScheme()
        kept = []
        for p1, p2, _c in hits:
            if p2 - p1 != 0:
                continue  # the duplicated HSP lives on diagonal 0
            r = extend_hit_ref(b1.seq, b2.seq, i1.codes_at, p1, p2, 8, sc)
            if r is not None:
                kept.append(r)
        assert len(kept) == 1


class TestScalarSemantics:
    def test_lowest_seed_extends_fully(self):
        # The all-A seed has code 0: nothing can cut it, so a fully
        # matching core extends to the core boundary.
        core = "A" * 8 + "GCGTCGTGCATG"
        b1, b2 = banks_for("TTTT" + core + "CCC", "GGGG" + core + "TTT")
        codes1 = seed_codes(b1.seq, 8)
        p1 = p2 = 1 + 4
        sc = ScoringScheme()
        right = extend_right_ref(b1.seq, b2.seq, codes1, p1, p2, 8, int(codes1[p1]), sc)
        assert right is not CUTOFF
        assert right.offset == len(core) - 8
        assert right.score == sc.seed_score(8) + (len(core) - 8)

    def test_lower_word_inside_matched_run_cuts(self):
        # "AAAA" (code 0) fully matched left of the seed cuts the left
        # extension of any higher-code seed.
        s1 = "AAAA" + "GCGC" + "CCCC"
        s2 = "AAAA" + "GCGC" + "CCCC"
        b1, b2 = banks_for(s1, s2)
        codes1 = seed_codes(b1.seq, 4)
        p = 1 + 8  # the CCCC seed
        sc = ScoringScheme()
        res = extend_left_ref(b1.seq, b2.seq, codes1, p, p, 4, int(codes1[p]), sc)
        assert res is CUTOFF

    def test_lower_word_straddling_mismatch_does_not_cut(self):
        # The low word "AAAA" is interrupted by a mismatch: the run length
        # never reaches w over it, so no cutoff fires (paper's L counter).
        s1 = "AAA" + "T" + "GGGG" + "CCCC"
        s2 = "AAA" + "G" + "GGGG" + "CCCC"
        b1, b2 = banks_for(s1, s2)
        codes1 = seed_codes(b1.seq, 4)
        p = 1 + 8  # the CCCC seed
        sc = ScoringScheme(xdrop_ungapped=100)
        res = extend_left_ref(b1.seq, b2.seq, codes1, p, p, 4, int(codes1[p]), sc)
        assert res is not CUTOFF

    def test_xdrop_stops_extension(self, rng):
        sc = ScoringScheme(xdrop_ungapped=6)
        core = "A" * 8 + "GTAC"  # seed = A*8 (code 0: uncuttable)
        # after the core: junk that mismatches everywhere
        b1, b2 = banks_for(core + "A" * 30, core + "C" * 30)
        codes1 = seed_codes(b1.seq, 8)
        res = extend_right_ref(
            b1.seq, b2.seq, codes1, 1, 1, 8, int(codes1[1]), sc
        )
        assert res is not CUTOFF
        # best offset stays within the core
        assert res.offset == len(core) - 8

    def test_separator_hard_stop(self):
        b = Bank.from_strings([("a", "ACGTACGTAC"), ("b", "ACGTACGTAC")])
        codes1 = seed_codes(b.seq, 4)
        sc = ScoringScheme(xdrop_ungapped=100)
        # seed at start of second sequence; left extension hits separator
        p = int(b.bounds(1)[0])
        res = extend_left_ref(b.seq, b.seq, codes1, p, p, 4, int(codes1[p]), sc)
        assert res is not CUTOFF
        assert res.offset == 0

    def test_left_cutoff_inclusive_right_cutoff_strict(self):
        # Two occurrences of the minimal seed (AAAA, code 0) on one
        # diagonal: the LEFT occurrence must generate (the right scan's
        # cutoff is strict, so equal codes do not cut), and the RIGHT
        # occurrence must be cut (the left scan's cutoff is inclusive).
        s = "AAAAGCGCAAAA"  # AAAA at offsets 0 and 8
        b1, b2 = banks_for(s, s)
        codes1 = seed_codes(b1.seq, 4)
        sc = ScoringScheme(xdrop_ungapped=100)
        left_occ = extend_hit_ref(b1.seq, b2.seq, codes1, 1, 1, 4, sc)
        right_occ = extend_hit_ref(b1.seq, b2.seq, codes1, 9, 9, 4, sc)
        assert left_occ is not None
        assert right_occ is None


class TestUniqueness:
    """The ORIS key property: every HSP generated exactly once."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_unique_hsps_random_homology(self, seed):
        rng = np.random.default_rng(seed)
        core = random_dna(rng, 50)
        mut = mutate(rng, core, sub_rate=0.05, indel_rate=0.0)
        s1 = random_dna(rng, 20) + core + random_dna(rng, 20)
        s2 = random_dna(rng, 25) + mut + random_dna(rng, 15)
        b1, b2 = banks_for(s1, s2)
        w = 6
        hits, i1 = all_hits(b1, b2, w)
        sc = ScoringScheme()
        boxes = []
        for p1, p2, _c in hits:
            r = extend_hit_ref(b1.seq, b2.seq, i1.codes_at, p1, p2, w, sc)
            if r is not None:
                boxes.append(r)
        assert len(boxes) == len(set(boxes)), "duplicate HSP generated"

    def test_every_strong_hsp_is_generated_once(self, rng):
        # An exact 30-nt repeat occurring twice in bank2: two distinct
        # HSPs (different diagonals), each generated exactly once.
        core = random_dna(rng, 30)
        s1 = random_dna(rng, 10) + core + random_dna(rng, 10)
        s2 = core + random_dna(rng, 9) + core
        b1, b2 = banks_for(s1, s2)
        w = 8
        hits, i1 = all_hits(b1, b2, w)
        sc = ScoringScheme()
        boxes = []
        for p1, p2, _c in hits:
            r = extend_hit_ref(b1.seq, b2.seq, i1.codes_at, p1, p2, w, sc)
            if r is not None:
                boxes.append(r)
        diags = {b[2] - b[0] for b in boxes}
        assert len(boxes) == len(set(boxes))
        assert len(diags) >= 2  # both copies found


class TestBatchMatchesScalar:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_batch_equals_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        core = random_dna(rng, 60)
        mut = mutate(rng, core, sub_rate=0.08, indel_rate=0.01)
        s1 = random_dna(rng, 30) + core + random_dna(rng, 30)
        s2 = random_dna(rng, 20) + mut + random_dna(rng, 40)
        b1, b2 = banks_for(s1, s2)
        w = 7
        hits, i1 = all_hits(b1, b2, w)
        if not hits:
            return
        sc = ScoringScheme()
        expected = []
        for p1, p2, _c in hits:
            r = extend_hit_ref(b1.seq, b2.seq, i1.codes_at, p1, p2, w, sc)
            if r is not None:
                expected.append(r)
        p1v = np.array([h[0] for h in hits])
        p2v = np.array([h[1] for h in hits])
        cv = np.array([h[2] for h in hits])
        res = batch_extend(b1.seq, b2.seq, i1.codes_at, p1v, p2v, cv, w, sc)
        got = [
            (
                int(res.start1[i]),
                int(res.end1[i]),
                int(res.start2[i]),
                int(res.end2[i]),
                int(res.score[i]),
            )
            for i in np.nonzero(res.kept)[0]
        ]
        assert sorted(got) == sorted(expected)

    def test_empty_batch(self):
        b = Bank.from_strings([("a", "ACGTACGT")])
        z = np.empty(0, dtype=np.int64)
        res = batch_extend(b.seq, b.seq, seed_codes(b.seq, 4), z, z, z, 4, ScoringScheme())
        assert res.kept.shape == (0,)

    def test_shape_mismatch_rejected(self):
        b = Bank.from_strings([("a", "ACGTACGT")])
        with pytest.raises(ValueError):
            batch_extend(
                b.seq, b.seq, seed_codes(b.seq, 4),
                np.array([1, 2]), np.array([1]), np.array([0, 0]),
                4, ScoringScheme(),
            )

    def test_cutoff_disabled_keeps_duplicates(self, rng):
        core = random_dna(rng, 40)
        b1, b2 = banks_for("TT" + core + "GG", "CC" + core + "AA")
        w = 6
        hits, i1 = all_hits(b1, b2, w)
        sc = ScoringScheme()
        p1v = np.array([h[0] for h in hits])
        p2v = np.array([h[1] for h in hits])
        cv = np.array([h[2] for h in hits])
        on = batch_extend(b1.seq, b2.seq, i1.codes_at, p1v, p2v, cv, w, sc)
        off = batch_extend(
            b1.seq, b2.seq, i1.codes_at, p1v, p2v, cv, w, sc, ordered_cutoff=False
        )
        assert off.kept.all()  # nothing cut without the rule
        assert on.kept.sum() < off.kept.sum()
        # the same (deduplicated) HSP boxes result either way
        def boxes(res, mask):
            return {
                (int(res.start1[i]), int(res.end1[i]), int(res.start2[i]))
                for i in np.nonzero(mask)[0]
            }
        assert boxes(on, on.kept) == boxes(off, off.kept)
