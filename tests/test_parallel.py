"""Tests for the parallel step-2 decomposition (repro.core.parallel)."""

import numpy as np
import pytest

from repro.core import OrisEngine, OrisParams
from repro.core.parallel import compare_parallel, split_code_ranges


class TestSplitCodeRanges:
    def test_covers_everything_disjointly(self):
        ranges = split_code_ranges(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a1, b1), (a2, b2) in zip(ranges, ranges[1:]):
            assert b1 == a2

    def test_more_workers_than_codes(self):
        ranges = split_code_ranges(3, 10)
        assert sum(b - a for a, b in ranges) == 3
        assert all(b > a for a, b in ranges)

    def test_single_worker(self):
        assert split_code_ranges(42, 1) == [(0, 42)]

    def test_zero_codes(self):
        assert split_code_ranges(0, 4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            split_code_ranges(10, 0)


class TestCompareParallel:
    """The paper's section-4 claim: seed-range partitioning is exact."""

    @pytest.mark.parametrize("n_workers", [2, 3, 5])
    def test_identical_to_sequential(self, est_pair, n_workers):
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        par = compare_parallel(*est_pair, OrisParams(), n_workers=n_workers)
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]
        assert par.counters.n_hsps == seq.counters.n_hsps
        assert par.counters.n_pairs == seq.counters.n_pairs

    def test_single_worker_falls_back(self, est_pair):
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        par = compare_parallel(*est_pair, OrisParams(), n_workers=1)
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]

    def test_both_strand_rejected(self, est_pair):
        with pytest.raises(ValueError):
            compare_parallel(*est_pair, OrisParams(strand="both"), n_workers=2)
