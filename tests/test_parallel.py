"""Tests for the parallel step-2 decomposition (repro.core.parallel)."""

import pickle

import numpy as np
import pytest

from repro.core import OrisEngine, OrisParams
from repro.core.parallel import (
    FaultSpec,
    build_range_payload,
    compare_parallel,
    plan_ranges,
    publish_range_payload,
    run_range,
    split_code_ranges,
)


class TestSplitCodeRanges:
    def test_covers_everything_disjointly(self):
        ranges = split_code_ranges(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a1, b1), (a2, b2) in zip(ranges, ranges[1:]):
            assert b1 == a2

    def test_more_workers_than_codes(self):
        ranges = split_code_ranges(3, 10)
        assert sum(b - a for a, b in ranges) == 3
        assert all(b > a for a, b in ranges)

    def test_single_worker(self):
        assert split_code_ranges(42, 1) == [(0, 42)]

    def test_zero_codes(self):
        assert split_code_ranges(0, 4) == []

    def test_one_code_many_workers(self):
        assert split_code_ranges(1, 64) == [(0, 1)]

    def test_workers_equal_codes(self):
        ranges = split_code_ranges(5, 5)
        assert ranges == [(i, i + 1) for i in range(5)]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            split_code_ranges(10, 0)


class TestPlanRanges:
    def _common(self, est_pair):
        engine = OrisEngine(OrisParams())
        i1, i2 = engine._build_indexes(*est_pair)
        return i1.common_codes(i2)

    def test_legacy_matches_split_code_ranges(self, est_pair):
        common = self._common(est_pair)
        assert plan_ranges(common, 6, OrisParams(), "legacy") == (
            split_code_ranges(common.n_codes, 6)
        )

    def test_balanced_covers_code_space(self, est_pair):
        common = self._common(est_pair)
        ranges = plan_ranges(common, 8, OrisParams())
        assert ranges[0][0] == 0
        assert ranges[-1][1] == common.n_codes
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_records_cost_metrics(self, est_pair):
        from repro.obs import MetricsRegistry

        common = self._common(est_pair)
        registry = MetricsRegistry()
        plan_ranges(common, 8, OrisParams(), "balanced", registry)
        assert "sched.chunk_cost_pairs" in registry
        assert registry.value("sched.chunk_cost_ratio") >= 1.0

    def test_unknown_split_rejected(self, est_pair):
        common = self._common(est_pair)
        with pytest.raises(ValueError, match="split"):
            plan_ranges(common, 4, OrisParams(), "random")


class TestRangePayload:
    """The compact worker payload: picklable, and its tasks are pure."""

    def _payload(self, est_pair, params=None):
        from repro.align.evalue import karlin_params

        params = params or OrisParams()
        engine = OrisEngine(params)
        i1, i2 = engine._build_indexes(*est_pair)
        common = i1.common_codes(i2)
        threshold = engine._resolve_hsp_min_score(
            *est_pair, karlin_params(params.scoring)
        )
        return build_range_payload(i1, i2, common, params, threshold)

    def test_payload_survives_pickling(self, est_pair):
        payload = self._payload(est_pair)
        clone = pickle.loads(pickle.dumps(payload))
        n = payload.n_codes
        a = run_range(payload, 0, n // 2)
        b = run_range(clone, 0, n // 2)
        assert np.array_equal(a.start1, b.start1)
        assert np.array_equal(a.score, b.score)
        assert (a.n_pairs, a.n_cut, a.steps) == (b.n_pairs, b.n_cut, b.steps)

    def test_run_range_is_idempotent(self, est_pair):
        payload = self._payload(est_pair)
        n = payload.n_codes
        first = run_range(payload, n // 4, n // 2)
        second = run_range(payload, n // 4, n // 2)
        assert np.array_equal(first.start1, second.start1)
        assert np.array_equal(first.end1, second.end1)

    def test_ranges_partition_like_full_run(self, est_pair):
        payload = self._payload(est_pair)
        n = payload.n_codes
        whole = run_range(payload, 0, n)
        parts = [run_range(payload, lo, hi) for lo, hi in split_code_ranges(n, 4)]
        assert np.array_equal(
            whole.start1, np.concatenate([p.start1 for p in parts])
        )
        assert whole.n_pairs == sum(p.n_pairs for p in parts)

    def test_empty_range(self, est_pair):
        payload = self._payload(est_pair)
        res = run_range(payload, 3, 3)
        assert res.n_hsps == 0
        assert res.n_pairs == 0


class TestFaultSpec:
    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            FaultSpec(lo=0, mode="explode", marker="m")

    def test_finite_fault_needs_marker(self):
        with pytest.raises(ValueError, match="marker"):
            FaultSpec(lo=0, mode="raise", times=1)

    def test_fires_only_n_times(self, est_pair, tmp_path):
        marker = tmp_path / "m"
        fault = FaultSpec(lo=0, mode="raise", times=2, marker=str(marker))
        params = OrisParams()
        engine = OrisEngine(params)
        i1, i2 = engine._build_indexes(*est_pair)
        common = i1.common_codes(i2)
        from repro.align.evalue import karlin_params

        threshold = engine._resolve_hsp_min_score(
            *est_pair, karlin_params(params.scoring)
        )
        payload = build_range_payload(
            i1, i2, common, params, threshold, fault=fault
        )
        for _ in range(2):
            with pytest.raises(RuntimeError, match="injected"):
                run_range(payload, 0, 1)
        run_range(payload, 0, 1)  # third attempt: fault exhausted
        assert marker.stat().st_size == 2


class TestCompareParallel:
    """The paper's section-4 claim: seed-range partitioning is exact."""

    @pytest.mark.parametrize("n_workers", [2, 3, 5])
    def test_identical_to_sequential(self, est_pair, n_workers):
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        par = compare_parallel(*est_pair, OrisParams(), n_workers=n_workers)
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]
        assert par.counters.n_hsps == seq.counters.n_hsps
        assert par.counters.n_pairs == seq.counters.n_pairs

    def test_single_worker_falls_back(self, est_pair):
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        par = compare_parallel(*est_pair, OrisParams(), n_workers=1)
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]

    def test_both_strand_rejected(self, est_pair):
        with pytest.raises(ValueError):
            compare_parallel(*est_pair, OrisParams(strand="both"), n_workers=2)

    def test_unordered_cutoff_rejected(self, est_pair):
        with pytest.raises(ValueError, match="ordered-seed cutoff"):
            compare_parallel(
                *est_pair, OrisParams(ordered_cutoff=False), n_workers=2
            )

    def test_spawn_start_method_matches_sequential(self, est_pair):
        """No silent serial fallback off-fork: the pickled worker payload
        makes the spawn start method produce the exact same records."""
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        with pytest.warns(RuntimeWarning, match="spawn"):
            par = compare_parallel(
                *est_pair, OrisParams(), n_workers=2, start_method="spawn"
            )
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]

    def test_unavailable_start_method_warns_and_runs_serially(self, est_pair):
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        with pytest.warns(RuntimeWarning, match="unavailable"):
            par = compare_parallel(
                *est_pair,
                OrisParams(),
                n_workers=2,
                start_method="no-such-method",
            )
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]

    def test_legacy_split_matches_sequential(self, est_pair):
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        par = compare_parallel(
            *est_pair, OrisParams(), n_workers=2, split="legacy"
        )
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]

    def test_pickled_payload_path_matches_sequential(self, est_pair):
        seq = OrisEngine(OrisParams()).compare(*est_pair)
        par = compare_parallel(
            *est_pair, OrisParams(), n_workers=2, use_shm=False
        )
        assert [r.to_line() for r in par.records] == [
            r.to_line() for r in seq.records
        ]

    def test_shm_run_publishes_arena_bytes(self, est_pair):
        par = compare_parallel(*est_pair, OrisParams(), n_workers=2)
        assert par.metrics.value("shm.bytes_published") > 0


class TestShmPayload:
    """The zero-copy fan-out: spec-sized pickles, identical results."""

    def _payload(self, est_pair):
        from repro.align.evalue import karlin_params

        params = OrisParams()
        engine = OrisEngine(params)
        i1, i2 = engine._build_indexes(*est_pair)
        common = i1.common_codes(i2)
        threshold = engine._resolve_hsp_min_score(
            *est_pair, karlin_params(params.scoring)
        )
        return build_range_payload(i1, i2, common, params, threshold)

    def test_pickle_is_at_least_10x_smaller(self, est_pair):
        payload = self._payload(est_pair)
        arena, shm_payload = publish_range_payload(payload)
        try:
            concrete = len(pickle.dumps(payload))
            shared = len(pickle.dumps(shm_payload))
            assert concrete >= 10 * shared  # the ISSUE's acceptance bar
        finally:
            arena.close()

    def test_resolved_payload_runs_identically(self, est_pair):
        payload = self._payload(est_pair)
        arena, shm_payload = publish_range_payload(payload)
        try:
            n = payload.n_codes
            a = run_range(payload, 0, n // 2)
            b = run_range(shm_payload, 0, n // 2)
            assert np.array_equal(a.start1, b.start1)
            assert np.array_equal(a.score, b.score)
            assert (a.n_pairs, a.n_cut, a.steps) == (b.n_pairs, b.n_cut, b.steps)
        finally:
            arena.close()

    def test_views_are_read_only(self, est_pair):
        payload = self._payload(est_pair)
        arena, shm_payload = publish_range_payload(payload)
        try:
            resolved = shm_payload.resolve()
            with pytest.raises((ValueError, RuntimeError)):
                resolved.seq1[0] = 0
        finally:
            arena.close()
