"""Tests for gapped x-drop extension (repro.align.gapped)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.gapped import (
    batch_gapped_extend,
    gapped_extend_ref,
)
from repro.align.scoring import ScoringScheme
from repro.data.synthetic import mutate, random_dna
from repro.io.bank import Bank


def banks_for(s1: str, s2: str):
    return Bank.from_strings([("a", s1)]), Bank.from_strings([("b", s2)])


def batch_tuple(res, i=0):
    return (
        int(res.score[i]),
        int(res.consumed1[i]),
        int(res.consumed2[i]),
        int(res.matches[i]),
        int(res.mismatches[i]),
        int(res.gap_columns[i]),
        int(res.gap_openings[i]),
        int(res.min_dd[i]),
        int(res.max_dd[i]),
    )


def ref_tuple(ref):
    return (
        ref.score,
        ref.consumed1,
        ref.consumed2,
        ref.matches,
        ref.mismatches,
        ref.gap_columns,
        ref.gap_openings,
        ref.min_dd,
        ref.max_dd,
    )


class TestScalarReference:
    def test_perfect_match_right(self, scoring):
        core = "ACGGTCAGTCAGGCATGCAT"
        b1, b2 = banks_for(core, core)
        ref = gapped_extend_ref(b1.seq, b2.seq, 1, 1, +1, scoring)
        assert ref.score == len(core)
        assert ref.consumed1 == ref.consumed2 == len(core)
        assert ref.matches == len(core)
        assert ref.gap_columns == 0

    def test_perfect_match_left(self, scoring):
        core = "ACGGTCAGTCAGGCATGCAT"
        b1, b2 = banks_for(core, core)
        end = 1 + len(core)
        ref = gapped_extend_ref(b1.seq, b2.seq, end, end, -1, scoring)
        assert ref.score == len(core)
        assert ref.consumed1 == len(core)

    def test_empty_extension_into_junk(self, rng, scoring):
        b1, b2 = banks_for("A" * 30, "C" * 30)
        ref = gapped_extend_ref(b1.seq, b2.seq, 1, 1, +1, scoring)
        assert ref.score == 0
        assert ref.consumed1 == 0 and ref.consumed2 == 0

    def test_single_gap_detected(self, rng, scoring):
        core = random_dna(rng, 60)
        gapped = core[:30] + core[33:]  # 3-nt deletion in seq2
        b1, b2 = banks_for(core, gapped)
        ref = gapped_extend_ref(b1.seq, b2.seq, 1, 1, +1, scoring)
        assert ref.gap_columns == 3
        # Under LINEAR gap costs a 3-column gap may legally split across
        # accidental matches at identical score, so openings is 1..3.
        assert 1 <= ref.gap_openings <= 3
        assert ref.min_dd == -3
        assert ref.score == 57 - ScoringScheme().gap_open * 3

    def test_never_crosses_separator(self, rng, scoring):
        b = Bank.from_strings([("a", random_dna(rng, 40)), ("b", random_dna(rng, 40))])
        core = b.sequence_str(0)
        other = Bank.from_strings([("c", core + core)])
        # extension along the identical prefix must stop at sequence end
        ref = gapped_extend_ref(b.seq, other.seq, 1, 1, +1, scoring)
        assert ref.consumed1 <= 40

    def test_direction_validation(self, scoring):
        b1, b2 = banks_for("ACGT", "ACGT")
        with pytest.raises(ValueError):
            gapped_extend_ref(b1.seq, b2.seq, 1, 1, 0, scoring)


class TestBatchAgainstScalar:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_homology_parity(self, seed):
        rng = np.random.default_rng(seed)
        core = random_dna(rng, 100)
        mut = mutate(rng, core, sub_rate=0.06, indel_rate=0.02)
        s1 = random_dna(rng, 25) + core + random_dna(rng, 25)
        s2 = random_dna(rng, 30) + mut + random_dna(rng, 20)
        b1, b2 = banks_for(s1, s2)
        sc = ScoringScheme()
        anchors = [
            (int(rng.integers(1, len(b1.seq) - 1)), int(rng.integers(1, len(b2.seq) - 1)), 1 if t % 2 else -1)
            for t in range(30)
        ]
        p1 = np.array([a[0] for a in anchors])
        p2 = np.array([a[1] for a in anchors])
        dirs = np.array([a[2] for a in anchors])
        res = batch_gapped_extend(b1.seq, b2.seq, p1, p2, dirs, sc)
        for i, (q1, q2, d) in enumerate(anchors):
            ref = gapped_extend_ref(b1.seq, b2.seq, q1, q2, d, sc)
            assert batch_tuple(res, i) == ref_tuple(ref), (i, q1, q2, d)

    def test_scalar_direction_broadcast(self, rng, scoring):
        core = random_dna(rng, 50)
        b1, b2 = banks_for(core, core)
        res = batch_gapped_extend(
            b1.seq, b2.seq, np.array([1, 5]), np.array([1, 5]), +1, scoring
        )
        assert res.score.shape == (2,)

    def test_empty_batch(self, scoring):
        b1, b2 = banks_for("ACGT", "ACGT")
        z = np.empty(0, dtype=np.int64)
        res = batch_gapped_extend(b1.seq, b2.seq, z, z, +1, scoring)
        assert res.score.shape == (0,)

    def test_direction_validation(self, scoring):
        b1, b2 = banks_for("ACGT", "ACGT")
        with pytest.raises(ValueError):
            batch_gapped_extend(
                b1.seq, b2.seq, np.array([1]), np.array([1]), np.array([2]), scoring
            )

    def test_annotation_identities(self, rng, scoring):
        # matches + mismatches + gap_columns == consumed1 + gap_left etc.
        core = random_dna(rng, 80)
        mut = mutate(rng, core, sub_rate=0.05, indel_rate=0.02)
        b1, b2 = banks_for(core, mut)
        res = batch_gapped_extend(
            b1.seq, b2.seq, np.array([1]), np.array([1]), +1, scoring
        )
        m, x, gc = int(res.matches[0]), int(res.mismatches[0]), int(res.gap_columns[0])
        c1, c2 = int(res.consumed1[0]), int(res.consumed2[0])
        # exact identities: columns consuming seq1 = m + x + gc_up
        gc_up = (gc + c1 - c2) // 2
        gc_left = gc - gc_up
        assert m + x + gc_up == c1
        assert m + x + gc_left == c2
        sc = scoring
        assert sc.match * m - sc.mismatch * x - sc.gap_open * gc == int(res.score[0])

    def test_band_limit_prevents_large_drift(self, rng):
        # A 40-nt insertion exceeds the default band: the extension must
        # stop rather than report a drifted alignment.
        sc = ScoringScheme()
        core = random_dna(rng, 60)
        s2 = core[:30] + random_dna(rng, 60) + core[30:]
        b1, b2 = banks_for(core, s2)
        res = batch_gapped_extend(
            b1.seq, b2.seq, np.array([1]), np.array([1]), +1, sc, band_radius=8
        )
        assert int(res.max_dd[0]) <= 8
        assert int(res.min_dd[0]) >= -8
