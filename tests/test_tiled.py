"""Tests for tiled (memory-bounded) comparison (repro.core.tiled)."""

import numpy as np
import pytest

from repro.core import OrisEngine, OrisParams, compare_tiled, iter_subject_tiles
from repro.data.synthetic import Transcriptome, make_est_bank, mutate, random_dna
from repro.io.bank import Bank


def record_keys(records):
    return {
        (r.query_id, r.subject_id, r.q_start, r.q_end, r.s_start, r.s_end)
        for r in records
    }


class TestTileIteration:
    def test_short_sequences_packed(self, rng):
        b = Bank.from_strings([(f"s{i}", random_dna(rng, 100)) for i in range(10)])
        tiles = list(iter_subject_tiles(b, tile_nt=350, overlap=50))
        assert len(tiles) >= 3
        names = [n for t in tiles for n in t.bank.names]
        assert names == [f"s{i}" for i in range(10)]  # order preserved

    def test_long_sequence_windowed_with_overlap(self, rng):
        seq = random_dna(rng, 1000)
        b = Bank.from_strings([("chr", seq)])
        tiles = list(iter_subject_tiles(b, tile_nt=400, overlap=100))
        assert len(tiles) >= 3
        # windows reconstruct the sequence
        rebuilt = {}
        for t in tiles:
            off = t.offsets["chr"]
            rebuilt[off] = t.bank.sequence_str(0)
        covered = set()
        for off, w in rebuilt.items():
            assert seq[off : off + len(w)] == w
            covered.update(range(off, off + len(w)))
        assert covered == set(range(1000))

    def test_ownership_partition(self, rng):
        seq = random_dna(rng, 1000)
        b = Bank.from_strings([("chr", seq)])
        tiles = list(iter_subject_tiles(b, tile_nt=400, overlap=100))
        owned = sorted(
            (t.owned_from["chr"], t.owned_until["chr"]) for t in tiles
        )
        # owned regions tile [0, 1000) without gaps or overlap
        assert owned[0][0] == 0
        assert owned[-1][1] == 1000
        for (a1, b1), (a2, b2) in zip(owned, owned[1:]):
            assert b1 == a2

    def test_owned_region_has_edge_margins(self, rng):
        seq = random_dna(rng, 1000)
        b = Bank.from_strings([("chr", seq)])
        tiles = list(iter_subject_tiles(b, tile_nt=400, overlap=100))
        for t in tiles:
            off = t.offsets["chr"]
            if off > 0:  # interior left edge keeps a margin
                assert t.owned_from["chr"] == off + 50

    def test_validation(self, rng):
        b = Bank.from_strings([("a", random_dna(rng, 100))])
        with pytest.raises(ValueError):
            list(iter_subject_tiles(b, tile_nt=0, overlap=0))
        with pytest.raises(ValueError):
            list(iter_subject_tiles(b, tile_nt=100, overlap=100))


class TestCompareTiled:
    def test_matches_monolithic_on_est_bank(self, est_pair):
        b1, b2 = est_pair
        mono = OrisEngine(OrisParams()).compare(b1, b2)
        tiled = compare_tiled(b1, b2, OrisParams(), tile_nt=8_000, overlap=2_000)
        assert record_keys(tiled.records) == record_keys(mono.records)

    def test_matches_monolithic_on_long_sequence(self, rng):
        # homologies implanted at tile borders included
        genome = random_dna(rng, 12_000)
        mut = mutate(rng, genome, sub_rate=0.03, indel_rate=0.002)
        b1 = Bank.from_strings([("q", genome[2_000:2_600]),
                                ("q2", genome[5_800:6_400])])
        b2 = Bank.from_strings([("chr", mut)])
        mono = OrisEngine(OrisParams()).compare(b1, b2)
        tiled = compare_tiled(b1, b2, OrisParams(), tile_nt=3_000, overlap=1_000)
        assert record_keys(tiled.records) == record_keys(mono.records)

    def test_counters_accumulate(self, est_pair):
        b1, b2 = est_pair
        tiled = compare_tiled(b1, b2, OrisParams(), tile_nt=8_000, overlap=2_000)
        assert tiled.counters.n_pairs > 0
        assert tiled.counters.n_records == len(tiled.records)

    def test_both_strand_rejected(self, est_pair):
        with pytest.raises(ValueError):
            compare_tiled(*est_pair, OrisParams(strand="both"))


class TestTiledFunnelMetrics:
    def test_funnel_consistent_after_ownership_restatement(self, rng):
        # Border duplicates are dropped by the ownership rule *after* the
        # per-tile display stage; compare_tiled restates step 4 so the
        # funnel identities describe the final output.
        from repro.obs import check_funnel, funnel_dict

        qs = [(f"q{i}", random_dna(rng, 600)) for i in range(3)]
        subject = "".join(mutate(rng, s, 0.04) for _, s in qs) * 3
        b1 = Bank.from_strings(qs)
        b2 = Bank.from_strings([("chr", subject)])
        res = compare_tiled(
            b1, b2, OrisParams(filter_kind="none"), tile_nt=2000, overlap=400
        )
        assert res.counters.n_tiles > 1
        f = funnel_dict(res.metrics)
        assert check_funnel(res.metrics) == []
        assert f["step4.records"] == len(res.records)
        assert f["step4.ownership_filtered"] > 0
        assert res.metrics.value("tile.tiles") == res.counters.n_tiles
