"""Metamorphic invariants of the ORIS engine.

Each test transforms the input banks in a way with a *known* effect on the
output record set and asserts the engine tracks it -- integration-level
properties that no single unit test covers.
"""

import numpy as np
import pytest

from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import Transcriptome, make_est_bank, mutate, random_dna
from repro.io.bank import Bank


def by_names(records):
    return {
        (r.query_id, r.subject_id, r.q_start, r.q_end, r.s_start, r.s_end)
        for r in records
    }


@pytest.fixture(scope="module")
def base_banks():
    rng = np.random.default_rng(314)
    tx = Transcriptome.generate(rng, n_genes=15, mean_len=500)
    return make_est_bank(rng, tx, 40), make_est_bank(rng, tx, 40)


class TestOrderInvariance:
    def test_subject_order_shuffle(self, base_banks):
        b1, b2 = base_banks
        records = list(b2.iter_records())
        rng = np.random.default_rng(1)
        rng.shuffle(records)
        shuffled = Bank.from_strings(records)
        a = OrisEngine(OrisParams()).compare(b1, b2)
        b = OrisEngine(OrisParams()).compare(b1, shuffled)
        assert by_names(a.records) == by_names(b.records)

    def test_query_order_shuffle(self, base_banks):
        b1, b2 = base_banks
        records = list(b1.iter_records())
        rng = np.random.default_rng(2)
        rng.shuffle(records)
        shuffled = Bank.from_strings(records)
        a = OrisEngine(OrisParams()).compare(b1, b2)
        b = OrisEngine(OrisParams()).compare(shuffled, b2)
        assert by_names(a.records) == by_names(b.records)


class TestCompositionality:
    def test_added_unrelated_subject_preserves_hits(self, base_banks, rng):
        b1, b2 = base_banks
        extra = [("unrelated", random_dna(np.random.default_rng(999), 2000))]
        augmented = Bank.from_strings(list(b2.iter_records()) + extra)
        a = OrisEngine(OrisParams()).compare(b1, b2)
        b = OrisEngine(OrisParams()).compare(b1, augmented)
        # e-values depend only on bank1 and the subject sequence, so the
        # original records carry over verbatim; new ones may appear only
        # against the new subject.
        assert by_names(a.records) <= by_names(b.records)
        extras = {k for k in by_names(b.records) if k[1] == "unrelated"}
        assert by_names(b.records) - by_names(a.records) == extras

    def test_duplicated_query_duplicates_records(self, base_banks):
        b1, b2 = base_banks
        recs = list(b1.iter_records())
        name0, seq0 = recs[0]
        dup = Bank.from_strings(recs + [("dup_" + name0, seq0)])
        base = OrisEngine(OrisParams()).compare(b1, b2)
        with_dup = OrisEngine(OrisParams()).compare(dup, b2)
        base_keys = by_names(base.records)
        dup_keys = by_names(with_dup.records)
        orig = {k for k in base_keys if k[0] == name0}
        mirrored = {("dup_" + name0, *k[1:]) for k in orig}
        # every original hit of seq0 appears for the duplicate as well
        # (e-values shift with the slightly larger bank1; coordinates and
        # pairing must not)
        missing = mirrored - dup_keys
        assert not missing

    def test_subject_bank_split_union(self, base_banks):
        b1, b2 = base_banks
        recs = list(b2.iter_records())
        half = len(recs) // 2
        part_a = Bank.from_strings(recs[:half])
        part_b = Bank.from_strings(recs[half:])
        whole = OrisEngine(OrisParams()).compare(b1, b2)
        split_keys = by_names(
            OrisEngine(OrisParams()).compare(b1, part_a).records
        ) | by_names(OrisEngine(OrisParams()).compare(b1, part_b).records)
        assert by_names(whole.records) == split_keys


class TestScaleInvariances:
    def test_identity_self_comparison_diagonal(self, rng):
        seq = random_dna(rng, 3000)
        b = Bank.from_strings([("s", seq)])
        res = OrisEngine(OrisParams()).compare(b, b)
        assert len(res.records) == 1
        rec = res.records[0]
        assert rec.pident == pytest.approx(100.0)
        assert rec.length == 3000
        assert (rec.q_start, rec.q_end) == (1, 3000)
        assert (rec.s_start, rec.s_end) == (1, 3000)

    def test_revcomp_symmetric_on_both_strands(self, rng):
        from repro.encoding import decode, encode, reverse_complement

        core = random_dna(rng, 400)
        b1 = Bank.from_strings([("q", core)])
        plus = Bank.from_strings([("s", core)])
        minus = Bank.from_strings(
            [("s", decode(reverse_complement(encode(core))))]
        )
        rp = OrisEngine(OrisParams(strand="both")).compare(b1, plus)
        rm = OrisEngine(OrisParams(strand="both")).compare(b1, minus)
        # the same homology is found either way, on opposite strands
        assert len(rp.records) >= 1 and len(rm.records) >= 1
        assert not rp.records[0].minus_strand
        assert rm.records[0].minus_strand
        assert rp.records[0].length == rm.records[0].length
