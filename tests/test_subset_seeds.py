"""Tests for subset seeds (repro.encoding.subset + engine integration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import mutate, random_dna
from repro.encoding import (
    TRANSITION_EXAMPLE_9_3,
    SubsetSeedMask,
    encode,
    subset_seed_codes,
)
from repro.io.bank import Bank

TRANSITION = {"A": "G", "G": "A", "C": "T", "T": "C"}
TRANSVERSION = {"A": "C", "C": "A", "G": "T", "T": "G"}


class TestMask:
    def test_example_mask(self):
        m = SubsetSeedMask(TRANSITION_EXAMPLE_9_3)
        assert m.n_exact == 9
        assert m.n_transition == 3
        assert m.span == 14
        assert m.weight == pytest.approx(10.5)
        assert m.n_codes() == 4**9 * 2**3

    def test_validation(self):
        with pytest.raises(ValueError):
            SubsetSeedMask("@##")  # must start exact
        with pytest.raises(ValueError):
            SubsetSeedMask("##@")  # must end exact
        with pytest.raises(ValueError):
            SubsetSeedMask("#x#")
        with pytest.raises(ValueError):
            SubsetSeedMask("")


class TestCodes:
    def test_transition_class_property(self):
        # The paper's code makes purine/pyrimidine a bit-equality test:
        # transitions preserve the @-digit, transversions flip it.
        m = SubsetSeedMask("#@#")
        base = subset_seed_codes(encode("AAT"), m)[0]
        assert subset_seed_codes(encode("AGT"), m)[0] == base  # A->G
        assert subset_seed_codes(encode("ACT"), m)[0] != base  # A->C
        assert subset_seed_codes(encode("ATT"), m)[0] != base  # A->T

    def test_exact_positions_strict(self):
        m = SubsetSeedMask("#@#")
        base = subset_seed_codes(encode("AAT"), m)[0]
        assert subset_seed_codes(encode("GAT"), m)[0] != base  # exact pos

    def test_dont_care_ignored(self):
        m = SubsetSeedMask("#-#")
        assert (
            subset_seed_codes(encode("AAT"), m)[0]
            == subset_seed_codes(encode("AGT"), m)[0]
            == subset_seed_codes(encode("ACT"), m)[0]
        )

    def test_invalid_span_sentinel(self):
        m = SubsetSeedMask("#-#")
        assert subset_seed_codes(encode("ANT"), m)[0] == m.invalid_code()

    def test_codes_bounded(self):
        m = SubsetSeedMask(TRANSITION_EXAMPLE_9_3)
        s = encode(random_dna(np.random.default_rng(0), 500))
        codes = subset_seed_codes(s, m)
        assert codes.max() <= m.invalid_code()
        valid = codes[codes < m.invalid_code()]
        assert valid.min() >= 0

    @given(st.text(alphabet="ACGT", min_size=14, max_size=40))
    def test_transition_invariance_property(self, s):
        # Mutating any @-position by a transition never changes the code.
        m = SubsetSeedMask(TRANSITION_EXAMPLE_9_3)
        base = subset_seed_codes(encode(s), m)[0]
        at_positions = [i for i, c in enumerate(m.pattern) if c == "@"]
        for pos in at_positions:
            mutated = s[:pos] + TRANSITION[s[pos]] + s[pos + 1 :]
            assert subset_seed_codes(encode(mutated), m)[0] == base

    @given(st.text(alphabet="ACGT", min_size=14, max_size=40))
    def test_transversion_sensitivity_property(self, s):
        m = SubsetSeedMask(TRANSITION_EXAMPLE_9_3)
        base = subset_seed_codes(encode(s), m)[0]
        at_positions = [i for i, c in enumerate(m.pattern) if c == "@"]
        for pos in at_positions:
            mutated = s[:pos] + TRANSVERSION[s[pos]] + s[pos + 1 :]
            assert subset_seed_codes(encode(mutated), m)[0] != base


class TestEngine:
    def test_end_to_end(self, rng):
        core = random_dna(rng, 300)
        mut = mutate(rng, core, sub_rate=0.05, indel_rate=0.002)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        res = OrisEngine(
            OrisParams(subset_seed=TRANSITION_EXAMPLE_9_3)
        ).compare(b1, b2)
        assert len(res.records) >= 1

    def test_ablation_records_equal(self, rng):
        core = random_dna(rng, 400)
        mut = mutate(rng, core, sub_rate=0.08, indel_rate=0.002)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        on = OrisEngine(OrisParams(subset_seed=TRANSITION_EXAMPLE_9_3)).compare(b1, b2)
        off = OrisEngine(
            OrisParams(subset_seed=TRANSITION_EXAMPLE_9_3, ordered_cutoff=False)
        ).compare(b1, b2)
        assert {r.to_line() for r in on.records} == {r.to_line() for r in off.records}

    def test_transition_tolerance_anchors_more(self):
        # Under transition-only divergence, the subset seed keeps far more
        # anchors per position than an equal-selectivity spaced seed.
        rng = np.random.default_rng(42)
        g = random_dna(rng, 6000)
        mutated = "".join(
            TRANSITION[c] if rng.random() < 0.25 else c for c in g
        )
        b1 = Bank.from_strings([("G", g)])
        b2 = Bank.from_strings([("M", mutated)])
        subset = OrisEngine(
            OrisParams(subset_seed=TRANSITION_EXAMPLE_9_3, max_evalue=10)
        ).compare(b1, b2)
        contiguous = OrisEngine(OrisParams(w=11, max_evalue=10)).compare(b1, b2)
        assert subset.counters.n_pairs > contiguous.counters.n_pairs

    def test_exclusive_with_spaced(self):
        with pytest.raises(ValueError):
            OrisParams(subset_seed="#@#", spaced_seed="101")

    def test_exclusive_with_asymmetric(self):
        with pytest.raises(ValueError):
            OrisParams(subset_seed="#@#", asymmetric=True)

    def test_effective_w(self):
        p = OrisParams(subset_seed=TRANSITION_EXAMPLE_9_3)
        assert p.effective_w == 10  # int(9 + 3/2)
