"""Tests for the table renderer and timing helpers (repro.eval)."""

import time

import pytest

from repro.eval import TimedRun, ascii_series_plot, render_csv, render_table, time_call


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"], [("a", 1.0), ("bb", 22.5)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = render_table(["x"], [(1234.5,), (12.34,), (1.234,), (0.0,)])
        assert "1234" in text or "1235" in text
        assert "12.3" in text
        assert "1.23" in text

    def test_csv(self):
        csv = render_csv(["a", "b"], [(1, 2), (3, 4)])
        assert csv.splitlines() == ["a,b", "1,2", "3,4"]


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        plot = ascii_series_plot(
            {"one": [(0, 1), (10, 5)], "two": [(5, 3)]},
            width=40, height=10, x_label="x", y_label="y",
        )
        assert "o = one" in plot
        assert "x = two" in plot
        assert plot.count("\n") >= 12

    def test_empty(self):
        assert "no data" in ascii_series_plot({})


class TestTimeCall:
    def test_returns_value_and_times(self):
        run = time_call(lambda: 42)
        assert run.value == 42
        assert run.wall_seconds >= 0
        assert run.cpu_seconds >= 0

    def test_repeats_take_minimum(self):
        calls = []

        def fn():
            calls.append(1)
            time.sleep(0.01 if len(calls) == 1 else 0.0)
            return len(calls)

        run = time_call(fn, repeats=3)
        assert len(calls) == 3
        assert run.wall_seconds < 0.01

    def test_repeats_take_minimum_when_slow_run_is_last(self):
        # Regression guard on the aggregation direction: an implementation
        # that keeps the *last* repeat's time would pass the slow-first
        # test above but fail here.
        calls = []

        def fn():
            calls.append(1)
            time.sleep(0.01 if len(calls) == 3 else 0.0)
            return len(calls)

        run = time_call(fn, repeats=3)
        assert len(calls) == 3
        assert run.value == 3  # value is from the last run...
        assert run.wall_seconds < 0.01  # ...but the time is the minimum

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeats=0)

    def test_registry_routing_records_min_gauges(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        run = time_call(lambda: 1, repeats=2, registry=registry, name="unit")
        assert registry.value("bench.unit.wall_seconds") == run.wall_seconds
        assert registry.value("bench.unit.cpu_seconds") == run.cpu_seconds
        # Re-timing the same name keeps the best-ever value (min mode),
        # so repeated bench invocations sharpen rather than overwrite.
        slow = time_call(
            lambda: time.sleep(0.01), repeats=1, registry=registry, name="unit"
        )
        assert registry.value("bench.unit.wall_seconds") == min(
            run.wall_seconds, slow.wall_seconds
        )

    def test_registry_without_name_records_nothing(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        time_call(lambda: 1, registry=registry)
        assert len(registry) == 0
