"""Unit tests for the shared-memory arena (repro.runtime.shm)."""

import os
import pickle

import numpy as np
import pytest

from repro.runtime.errors import ResourceExhausted
from repro.runtime.shm import (
    ArenaSpec,
    SharedArena,
    arena_prefix,
    preflight_shm,
    reap_stale_segments,
    shm_dir,
    shm_free_bytes,
)

requires_dev_shm = pytest.mark.skipif(
    shm_dir() is None, reason="no /dev/shm on this platform"
)


def _arrays():
    return {
        "a": np.arange(100, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 33),
        "c": np.array([True, False, True]),
        "d": np.arange(7, dtype=np.uint8),
    }


class TestSharedArena:
    def test_round_trip_exact(self):
        arrays = _arrays()
        with SharedArena(dict(arrays)) as arena:
            views = arena.spec.attach()
            assert set(views) == set(arrays)
            for name, arr in arrays.items():
                np.testing.assert_array_equal(views[name], arr)
                assert views[name].dtype == arr.dtype

    def test_views_are_read_only(self):
        with SharedArena(_arrays()) as arena:
            views = arena.spec.attach()
            with pytest.raises((ValueError, RuntimeError)):
                views["a"][0] = 99

    def test_segments_are_64_byte_aligned(self):
        with SharedArena(_arrays()) as arena:
            for entry in arena.spec.entries:
                assert entry.offset % 64 == 0

    def test_spec_pickle_is_tiny(self):
        arrays = {"big": np.zeros(1_000_000, dtype=np.int64)}
        with SharedArena(arrays) as arena:
            blob = pickle.dumps(arena.spec)
            assert len(blob) < 2048  # 8 MB of data, a few hundred bytes of spec
            clone = pickle.loads(blob)
            assert isinstance(clone, ArenaSpec)
            assert clone.nbytes == 8_000_000

    def test_attach_is_cached_per_process(self):
        with SharedArena(_arrays()) as arena:
            first = arena.spec.attach()
            second = arena.spec.attach()
            assert first["a"] is second["a"]

    def test_close_is_idempotent(self):
        arena = SharedArena(_arrays())
        arena.close()
        arena.close()  # must not raise

    @requires_dev_shm
    def test_close_unlinks_the_block(self):
        arena = SharedArena(_arrays())
        path = os.path.join(shm_dir(), arena.spec.block)
        assert os.path.exists(path)
        arena.close()
        assert not os.path.exists(path)

    def test_block_name_embeds_owner_pid(self):
        with SharedArena(_arrays()) as arena:
            prefix, pid, _token = arena.spec.block.split("_")
            assert prefix == arena_prefix()
            assert int(pid) == os.getpid()

    def test_empty_arrays_supported(self):
        with SharedArena({"z": np.empty(0, dtype=np.int64)}) as arena:
            views = arena.spec.attach()
            assert views["z"].size == 0


class TestReap:
    @requires_dev_shm
    def test_reaps_blocks_of_dead_owners(self):
        # Fabricate a block that claims a certainly-dead owner pid.
        dead_pid = 2**22 - 3  # above any default pid_max's live range
        name = f"{arena_prefix()}_{dead_pid}_deadbeef"
        path = os.path.join(shm_dir(), name)
        with open(path, "wb") as fh:
            fh.write(b"\0" * 64)
        try:
            reaped = reap_stale_segments()
            assert name in reaped
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    @requires_dev_shm
    def test_leaves_live_owner_blocks_alone(self):
        with SharedArena(_arrays()) as arena:
            assert arena.spec.block not in reap_stale_segments()
            assert os.path.exists(os.path.join(shm_dir(), arena.spec.block))

    @requires_dev_shm
    def test_ignores_foreign_names(self):
        path = os.path.join(shm_dir(), "not_ours_at_all")
        with open(path, "wb") as fh:
            fh.write(b"\0")
        try:
            assert "not_ours_at_all" not in reap_stale_segments()
            assert os.path.exists(path)
        finally:
            os.unlink(path)


class TestPreflight:
    def test_absurd_requirement_raises(self):
        if shm_free_bytes() is None:
            pytest.skip("shm capacity unknown on this platform")
        with pytest.raises(ResourceExhausted, match="shared-memory"):
            preflight_shm(1 << 60)

    def test_reasonable_requirement_passes(self):
        preflight_shm(1)  # must not raise


class TestConcurrentReap:
    """Racing janitors must never unlink a live owner's arena."""

    @requires_dev_shm
    def test_racing_janitors_spare_live_arenas(self, tmp_path):
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )

        with SharedArena(_arrays()) as arena:
            live_block = arena.spec.block
            # A dead-owner block for the janitors to fight over.
            dead_pid = 2**22 - 3
            stale = f"{arena_prefix()}_{dead_pid}_feedface"
            stale_path = os.path.join(shm_dir(), stale)
            with open(stale_path, "wb") as fh:
                fh.write(b"\0" * 64)
            script = (
                "import sys, json\n"
                "from repro.runtime.shm import reap_stale_segments\n"
                "print(json.dumps(reap_stale_segments()))\n"
            )
            try:
                procs = [
                    subprocess.Popen(
                        [sys.executable, "-c", script],
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                        env=env,
                    )
                    for _ in range(4)
                ]
                outs = [p.communicate(timeout=60) for p in procs]
                assert all(p.returncode == 0 for p in procs), [
                    err for _, err in outs
                ]
                # Every janitor ran clean; none unlinked the live arena.
                live_path = os.path.join(shm_dir(), live_block)
                assert os.path.exists(live_path)
                import json

                reaped_by = [
                    json.loads(out) for out, _ in outs
                ]
                assert all(live_block not in r for r in reaped_by)
                # The stale block is gone, and racing unlinks (ENOENT
                # swallowed) did not crash any janitor.
                assert not os.path.exists(stale_path)
            finally:
                if os.path.exists(stale_path):
                    os.unlink(stale_path)
            # The parent's arena is still fully usable after the raid.
            views = arena.spec.attach()
            assert np.array_equal(views["a"], _arrays()["a"])
