"""Tests for the paper's sensitivity metric (repro.eval.sensitivity)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import SensitivityReport, compare_outputs, count_missed, is_equivalent
from repro.io.m8 import M8Record


def rec(q="q", s="s", qs=1, qe=100, ss=1, se=100) -> M8Record:
    return M8Record(
        query_id=q, subject_id=s, pident=99.0, length=abs(qe - qs) + 1,
        mismatches=0, gap_openings=0, q_start=qs, q_end=qe,
        s_start=ss, s_end=se, evalue=1e-20, bit_score=100.0,
    )


class TestEquivalence:
    def test_identical_equivalent(self):
        assert is_equivalent(rec(), rec())

    def test_different_pair_never_equivalent(self):
        assert not is_equivalent(rec(q="a"), rec(q="b"))
        assert not is_equivalent(rec(s="x"), rec(s="y"))

    def test_80_percent_overlap_boundary(self):
        a = rec(qs=1, qe=100, ss=1, se=100)
        b = rec(qs=1, qe=80, ss=1, se=80)  # 80/80 of shorter = 100% > 80%
        assert is_equivalent(a, b)
        c = rec(qs=61, qe=160, ss=61, se=160)  # 40% overlap
        assert not is_equivalent(a, c)

    def test_overlap_uses_shorter_interval(self):
        big = rec(qs=1, qe=1000, ss=1, se=1000)
        small = rec(qs=101, qe=200, ss=101, se=200)  # fully inside
        assert is_equivalent(big, small)

    def test_both_axes_must_overlap(self):
        a = rec(qs=1, qe=100, ss=1, se=100)
        b = rec(qs=1, qe=100, ss=501, se=600)  # same query, distant subject
        assert not is_equivalent(a, b)

    def test_strand_mismatch_not_equivalent(self):
        plus = rec(ss=1, se=100)
        minus = rec(ss=100, se=1)
        assert not is_equivalent(plus, minus)

    def test_minus_strand_pair_equivalent(self):
        a = rec(ss=100, se=1)
        b = rec(ss=95, se=1)
        assert is_equivalent(a, b)


class TestCountMissed:
    def test_all_found(self):
        found = [rec(), rec(q="b")]
        assert count_missed(found, found) == 0

    def test_all_missed(self):
        assert count_missed([], [rec(), rec(q="b")]) == 2

    def test_partial(self):
        reference = [rec(), rec(qs=501, qe=600, ss=501, se=600)]
        found = [rec()]
        assert count_missed(found, reference) == 1

    def test_sorted_window_probing_correct(self):
        # many candidates per pair: ensure the early-break window logic
        # does not skip a true match appearing late in sorted order
        found = [rec(qs=i, qe=i + 50, ss=i, se=i + 50) for i in range(1, 500, 25)]
        target = rec(qs=401, qe=451, ss=401, se=451)
        assert count_missed(found, [target]) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 400), min_size=0, max_size=12))
    def test_matches_naive_quadratic(self, starts):
        found = [rec(qs=s + 1, qe=s + 60, ss=s + 1, se=s + 60) for s in starts]
        reference = [
            rec(qs=s + 1, qe=s + 60, ss=s + 1, se=s + 60) for s in range(0, 401, 37)
        ]
        fast = count_missed(found, reference)
        naive = sum(
            1
            for r in reference
            if not any(is_equivalent(f, r) for f in found)
        )
        assert fast == naive


class TestReport:
    def test_percentages(self):
        rep = SensitivityReport(sc_total=200, bl_total=100, sc_miss=3, bl_miss=5)
        assert rep.scoris_miss_pct == pytest.approx(3.0)
        assert rep.blast_miss_pct == pytest.approx(2.5)

    def test_zero_totals(self):
        rep = SensitivityReport(0, 0, 0, 0)
        assert rep.scoris_miss_pct == 0.0
        assert rep.blast_miss_pct == 0.0

    def test_compare_outputs_symmetry(self):
        a = [rec(), rec(qs=201, qe=260, ss=201, se=260)]
        b = [rec()]
        rep = compare_outputs(a, b)
        assert rep.sc_total == 2 and rep.bl_total == 1
        assert rep.sc_miss == 0  # everything in b is found in a
        assert rep.bl_miss == 1  # one alignment of a missing from b


class TestGroundTruth:
    """Recall harness over implanted homologies (repro.eval.groundtruth)."""

    def test_make_implant_coordinates(self, rng):
        from repro.eval import make_implant

        imp = make_implant(rng, core_len=150, divergence=0.0)
        q = imp.bank1.sequence_str(0)[imp.q_start : imp.q_end]
        s = imp.bank2.sequence_str(0)[imp.s_start : imp.s_end]
        assert q == s  # zero divergence: exact copy at the coordinates
        assert imp.sw_score >= 150

    def test_recoverable_threshold(self, rng):
        from repro.eval import make_implant

        imp = make_implant(rng, core_len=200, divergence=0.02)
        assert imp.recoverable(30)
        assert not imp.recoverable(10**6)

    def test_experiment_recall_easy(self):
        from repro.core import OrisEngine, OrisParams
        from repro.eval import ImplantExperiment, recall

        exp = ImplantExperiment(trials=5)
        engines = {
            "oris": lambda b1, b2: OrisEngine(OrisParams()).compare(b1, b2).records
        }
        out = exp.run(engines, divergence=0.02, seed=1)
        assert recall(out["oris"]) == 1.0

    def test_experiment_recall_degrades(self):
        from repro.core import OrisEngine, OrisParams
        from repro.eval import ImplantExperiment, recall

        exp = ImplantExperiment(trials=8)
        engines = {
            "w14": lambda b1, b2: OrisEngine(
                OrisParams(w=14, max_evalue=10)
            ).compare(b1, b2).records
        }
        easy = recall(exp.run(engines, divergence=0.01, seed=2)["w14"])
        hard = recall(exp.run(engines, divergence=0.25, seed=2)["w14"])
        assert hard <= easy

    def test_recall_empty_denominator(self):
        from repro.eval import recall

        assert recall((0, 0)) == 1.0
