"""Tests for the paper's Table 1 dataset registry (repro.data.datasets)."""

import numpy as np
import pytest

from repro.data import PAPER_BANKS, load_bank, table1_rows
from repro.data.datasets import DEFAULT_SEED


class TestRegistry:
    def test_all_eleven_banks_present(self):
        assert set(PAPER_BANKS) == {
            "EST1", "EST2", "EST3", "EST4", "EST5", "EST6", "EST7",
            "VRL", "BCT", "H10", "H19",
        }

    def test_paper_sizes_recorded(self):
        assert PAPER_BANKS["EST1"].mbp == pytest.approx(6.44)
        assert PAPER_BANKS["H10"].n_seq == 19
        assert PAPER_BANKS["BCT"].origin == "misc. bacteria genomes"

    def test_unknown_bank_rejected(self):
        with pytest.raises(KeyError):
            load_bank("EST99")


class TestScaledGeneration:
    SCALE = 0.002  # tiny banks for fast tests

    def test_size_tracks_scale(self):
        b = load_bank("EST1", scale=self.SCALE)
        target = PAPER_BANKS["EST1"].mbp * 1e6 * self.SCALE
        assert b.size_nt == pytest.approx(target, rel=0.25)

    def test_deterministic_across_calls(self):
        a = load_bank("EST2", scale=self.SCALE)
        b = load_bank("EST2", scale=self.SCALE)
        assert a.names == b.names
        assert np.array_equal(a.seq, b.seq)

    def test_seed_changes_content(self):
        a = load_bank("EST2", scale=self.SCALE, seed=1)
        b = load_bank("EST2", scale=self.SCALE, seed=2)
        assert not np.array_equal(a.seq[: min(len(a.seq), len(b.seq))],
                                  b.seq[: min(len(a.seq), len(b.seq))])

    def test_chromosomes_are_few_long_sequences(self):
        h19 = load_bank("H19", scale=self.SCALE)
        assert h19.n_sequences <= 6
        assert h19.size_nt / h19.n_sequences > 10_000

    def test_est_banks_are_many_short_sequences(self):
        est = load_bank("EST1", scale=self.SCALE)
        assert est.n_sequences >= 10
        assert est.size_nt / est.n_sequences < 2_000


class TestHomologyStructure:
    """The cross-bank homology relations the paper's tables rely on."""

    SCALE = 0.002

    def test_est_pairs_share_homology(self):
        from repro.core import OrisEngine, OrisParams

        b1 = load_bank("EST1", scale=self.SCALE)
        b2 = load_bank("EST2", scale=self.SCALE)
        res = OrisEngine(OrisParams()).compare(b1, b2)
        assert len(res.records) > 0

    def test_h19_vrl_share_homology(self):
        from repro.core import OrisEngine, OrisParams

        h19 = load_bank("H19", scale=self.SCALE)
        vrl = load_bank("VRL", scale=self.SCALE)
        res = OrisEngine(OrisParams()).compare(h19, vrl)
        assert len(res.records) > 0

    def test_h10_bct_share_nothing(self):
        # Paper Table 6/7: H10 vs BCT finds 0 alignments.
        from repro.core import OrisEngine, OrisParams

        h10 = load_bank("H10", scale=self.SCALE)
        bct = load_bank("BCT", scale=self.SCALE)
        res = OrisEngine(OrisParams()).compare(h10, bct)
        assert len(res.records) == 0


class TestTable1:
    def test_rows_match_registry(self):
        rows = table1_rows(scale=0.002, names=["EST1", "H19"])
        assert len(rows) == 2
        name, origin, pn, pm, on, om = rows[0]
        assert name == "EST1" and pn == 13013
        assert om > 0
