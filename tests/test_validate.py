"""Tests for the validating ingestion layer (repro.io.validate)."""

import gzip
import io

import pytest

from repro.io.bank import Bank
from repro.io.validate import (
    POLICIES,
    IngestReport,
    InputDiagnostic,
    load_bank,
    validate_records,
)
from repro.runtime.errors import InputError

CLEAN = ">s1\nACGTACGT\n>s2\nTTTTCCCC\n"


def strict(text):
    return validate_records(io.StringIO(text), policy="strict")


def lenient(text):
    return validate_records(io.StringIO(text), policy="lenient")


def skip(text):
    return validate_records(io.StringIO(text), policy="skip")


class TestCleanInput:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_clean_passes_every_policy(self, policy):
        records, report = validate_records(io.StringIO(CLEAN), policy=policy)
        assert [tuple(r) for r in records] == [
            ("s1", "ACGTACGT"), ("s2", "TTTTCCCC"),
        ]
        assert report.ok
        assert report.n_records == 2
        assert report.n_dropped == 0
        assert not report.diagnostics

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            validate_records(io.StringIO(CLEAN), policy="yolo")

    def test_report_summary_is_one_line(self):
        _, report = strict(CLEAN)
        assert "\n" not in report.summary()
        assert "2 record(s) accepted" in report.summary()


class TestNormalization:
    """Transforms applied under *every* policy."""

    def test_lowercase_softmask_uppercased(self):
        records, report = strict(">s\nacgtACGT\n")
        assert records[0].sequence == "ACGTACGT"
        assert report.n_masked_chars == 4
        assert any(d.code == "normalized" for d in report.warnings)

    def test_uracil_becomes_thymine(self):
        records, report = strict(">s\nACGU\n")
        assert records[0].sequence == "ACGT"
        assert report.n_uracil_chars == 1

    def test_n_is_allowed_silently(self):
        records, report = strict(">s\nACGTNNNNACGT\n")
        assert records[0].sequence == "ACGTNNNNACGT"
        assert report.ok and not report.warnings

    def test_gaps_and_digits_stripped(self):
        records, report = strict(">s\nAC-GT 12 AC.GT\n")
        assert records[0].sequence == "ACGTACGT"
        assert report.n_stripped_chars == 4  # "-", "1", "2", "."

    def test_crlf_matches_unix(self):
        unix, _ = strict(">s\nACGT\nACGT\n")
        dos, _ = validate_records(
            io.BytesIO(b">s\r\nACGT\r\nACGT\r\n"), policy="strict"
        )
        assert [tuple(r) for r in dos] == [tuple(r) for r in unix]

    def test_missing_trailing_newline(self):
        records, _ = strict(">s\nACGT")
        assert records[0].sequence == "ACGT"


class TestStrictErrors:
    def test_ambiguity_codes_are_errors(self):
        with pytest.raises(InputError) as exc_info:
            strict(">s\nACGTRYACGT\n")
        codes = [d.code for d in exc_info.value.diagnostics]
        assert "ambiguous-nucleotides" in codes

    def test_illegal_characters_are_errors(self):
        with pytest.raises(InputError) as exc_info:
            strict(">s\nACGT!?\n")
        assert any(
            d.code == "illegal-characters" for d in exc_info.value.diagnostics
        )

    def test_duplicate_ids_are_errors(self):
        with pytest.raises(InputError) as exc_info:
            strict(">s\nACGT\n>s\nTTTT\n")
        dup = [d for d in exc_info.value.diagnostics if d.code == "duplicate-id"]
        assert dup and dup[0].record == "s"

    def test_empty_sequence_is_error(self):
        with pytest.raises(InputError):
            strict(">a\n>b\nACGT\n")

    def test_empty_file_is_error(self):
        with pytest.raises(InputError, match="no valid"):
            strict("")

    def test_data_before_header_is_error(self):
        with pytest.raises(InputError) as exc_info:
            strict("ACGT\n>s\nACGT\n")
        assert any(
            d.code == "data-before-header" for d in exc_info.value.diagnostics
        )

    def test_diagnostics_carry_provenance(self):
        with pytest.raises(InputError) as exc_info:
            validate_records(
                io.StringIO(">ok\nACGT\n>bad\nACGTRY\n"),
                policy="strict",
                source_name="probe.fa",
            )
        (diag,) = [
            d for d in exc_info.value.diagnostics
            if d.code == "ambiguous-nucleotides"
        ]
        assert diag.source == "probe.fa"
        assert diag.line == 3  # the >bad header line
        assert diag.record == "bad"
        assert diag.format().startswith("probe.fa:3: error[")


class TestLenientSalvage:
    def test_ambiguity_mapped_to_n(self):
        records, report = lenient(">s\nACGTRYACGT\n")
        assert records[0].sequence == "ACGTNNACGT"
        assert report.ok  # warnings only
        assert report.n_ambiguous_chars == 2

    def test_illegal_mapped_to_n(self):
        records, report = lenient(">s\nAC!GT\n")
        assert records[0].sequence == "ACNGT"

    def test_duplicate_dropped_with_warning(self):
        records, report = lenient(">s\nACGT\n>s\nTTTT\n")
        assert len(records) == 1
        assert report.n_dropped == 1
        assert any(d.code == "duplicate-id" for d in report.warnings)

    def test_valid_remainder_survives(self):
        records, report = lenient(">\norphan\n>good\nACGT\n")
        assert [r.name for r in records] == ["good"]
        assert records[0].sequence == "ACGT"

    def test_all_records_bad_still_raises(self):
        with pytest.raises(InputError, match="no valid"):
            lenient(">a\n>b\n")

    def test_all_ambiguous_record_warned(self):
        _, report = lenient(">s\nRRRYYY\n")
        assert any(d.code == "all-ambiguous" for d in report.warnings)


class TestSkipPolicy:
    def test_problem_records_dropped_whole(self):
        records, report = skip(">bad\nACGTRY\n>good\nACGT\n")
        assert [r.name for r in records] == ["good"]
        assert report.n_dropped == 1

    def test_clean_records_unchanged(self):
        records, _ = skip(CLEAN)
        assert len(records) == 2


class TestFileFormats:
    def test_gzip_path(self, tmp_path):
        path = tmp_path / "bank.fa.gz"
        path.write_bytes(gzip.compress(CLEAN.encode()))
        records, report = validate_records(path)
        assert len(records) == 2
        assert report.source == str(path)

    def test_truncated_gzip_raises_input_error(self, tmp_path):
        path = tmp_path / "trunc.fa.gz"
        path.write_bytes(gzip.compress(CLEAN.encode())[:-6])
        with pytest.raises(InputError) as exc_info:
            validate_records(path)
        assert any(d.code == "io-error" for d in exc_info.value.diagnostics)

    def test_missing_file_raises_input_error(self, tmp_path):
        with pytest.raises(InputError, match="cannot read"):
            validate_records(tmp_path / "absent.fa")

    def test_utf8_bom_stripped(self, tmp_path):
        path = tmp_path / "bom.fa"
        path.write_bytes(b"\xef\xbb\xbf" + CLEAN.encode())
        records, _ = validate_records(path)
        assert records[0].name == "s1"

    def test_binary_junk_rejected_without_traceback(self, tmp_path):
        path = tmp_path / "junk.fa"
        path.write_bytes(bytes(range(256)))
        with pytest.raises(InputError):
            validate_records(path)


class TestLoadBank:
    def test_matches_raw_loader_on_clean_input(self, tmp_path):
        path = tmp_path / "clean.fa"
        path.write_text(CLEAN)
        raw = Bank.from_fasta(path)
        validated, report = load_bank(path)
        assert validated.names == raw.names
        assert (validated.seq == raw.seq).all()
        assert report.n_records == 2

    def test_bank_from_fasta_policy_parameter(self, tmp_path):
        path = tmp_path / "mixed.fa"
        path.write_text(">s\nacgtRY\n")
        with pytest.raises(InputError):
            Bank.from_fasta(path, policy="strict")
        bank = Bank.from_fasta(path, policy="lenient")
        assert bank.n_sequences == 1

    def test_ingest_report_dataclass_surface(self):
        report = IngestReport(source="x.fa", policy="strict")
        report.add("warning", "w", "msg", line=3, record="r")
        report.add("error", "e", "msg")
        assert len(report.warnings) == 1
        assert len(report.errors) == 1
        assert not report.ok
        d = report.diagnostics[0]
        assert isinstance(d, InputDiagnostic)
        assert "x.fa:3" in d.format()
