"""Tests for the seed indexes (repro.index.seed_index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import code_of_word, seed_codes
from repro.index import CsrSeedIndex, LinkedSeedIndex, valid_window_mask
from repro.io.bank import Bank


class TestValidWindowMask:
    def test_excludes_separators(self):
        b = Bank.from_strings([("a", "ACGTACGT"), ("b", "ACGTACGT")])
        ok = valid_window_mask(b, 4)
        s0, e0 = b.bounds(0)
        # all in-sequence windows valid, everything touching separators not
        assert ok[s0 : e0 - 3].all()
        assert not ok[e0 - 3 + 1 : s0 + 8].any()

    def test_low_complexity_mask_removes_overlapping_windows(self):
        b = Bank.from_strings([("a", "ACGTACGTACGT")])
        lcm = np.zeros(b.seq.shape[0], dtype=bool)
        s, _ = b.bounds(0)
        lcm[s + 5] = True  # one masked character
        ok = valid_window_mask(b, 4, low_complexity_mask=lcm)
        # windows starting at s+2..s+5 include the masked char
        for off in range(2, 6):
            assert not ok[s + off]
        assert ok[s + 1]
        assert ok[s + 6]

    def test_mask_shape_checked(self):
        b = Bank.from_strings([("a", "ACGTACGT")])
        with pytest.raises(ValueError):
            valid_window_mask(b, 4, low_complexity_mask=np.zeros(3, dtype=bool))

    def test_stride_restarts_per_sequence(self):
        b = Bank.from_strings([("a", "ACGTACG"), ("b", "ACGTACG")])
        ok = valid_window_mask(b, 4, stride=2)
        for i in range(b.n_sequences):
            s, e = b.bounds(i)
            starts = [p - s for p in range(s, e) if ok[p]]
            assert starts == [0, 2]  # offsets 0 and 2 have full windows


class TestCsrIndex:
    def test_positions_of_known_word(self):
        b = Bank.from_strings([("a", "ACGTACGTAAACGT")])
        idx = CsrSeedIndex(b, 4)
        s, _ = b.bounds(0)
        got = idx.positions_of(code_of_word("ACGT"))
        assert list(got) == [s + 0, s + 4, s + 10]

    def test_positions_ascending_within_code(self):
        b = Bank.from_strings([("a", "ACACACACACAC")])
        idx = CsrSeedIndex(b, 4)
        got = idx.positions_of(code_of_word("ACAC"))
        assert list(got) == sorted(got)

    def test_absent_code_empty(self):
        b = Bank.from_strings([("a", "AAAAAAAA")])
        idx = CsrSeedIndex(b, 4)
        assert idx.positions_of(code_of_word("GGGG")).size == 0

    def test_unique_codes_sorted(self):
        b = Bank.from_strings([("a", "ACGTGGTACCAGT")])
        idx = CsrSeedIndex(b, 4)
        assert (np.diff(idx.unique_codes) > 0).all()

    def test_n_indexed_counts_windows(self):
        b = Bank.from_strings([("a", "ACGTACGT")])
        idx = CsrSeedIndex(b, 4)
        assert idx.n_indexed == 5

    def test_codes_at_covers_all_positions(self):
        b = Bank.from_strings([("a", "ACGTACGT")])
        idx = CsrSeedIndex(b, 4)
        assert idx.codes_at.shape == b.seq.shape


class TestLinkedVsCsr:
    """Figure-2 layout and CSR layout must index identical (code, pos) sets."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.text(alphabet="ACGTN", min_size=4, max_size=40), min_size=1, max_size=5),
        st.integers(min_value=2, max_value=6),
    )
    def test_same_content(self, seqs, w):
        b = Bank.from_strings(seqs)
        csr = CsrSeedIndex(b, w)
        linked = LinkedSeedIndex.build(b, w)
        assert linked.n_indexed == csr.n_indexed
        for code in np.unique(csr.unique_codes):
            got = linked.positions_of(int(code))
            assert got.dtype == np.int64
            np.testing.assert_array_equal(got, csr.positions_of(int(code)))

    def test_linked_chain_ascending(self):
        b = Bank.from_strings([("a", "ACACACACAC")])
        linked = LinkedSeedIndex.build(b, 2)
        pos = linked.positions_of(code_of_word("AC"))
        np.testing.assert_array_equal(pos, np.sort(pos))


class TestCommonCodes:
    def test_intersection(self):
        b1 = Bank.from_strings([("a", "AAAATTTT")])
        b2 = Bank.from_strings([("b", "TTTTGGGG")])
        i1, i2 = CsrSeedIndex(b1, 4), CsrSeedIndex(b2, 4)
        cc = i1.common_codes(i2)
        got = {int(c) for c in cc.codes}
        # shared 4-mers: those of TTTT region: ATTT? b2 has TTTT,TTTG,...
        # compute expected straightforwardly
        c1 = {int(c) for c in i1.unique_codes}
        c2 = {int(c) for c in i2.unique_codes}
        assert got == (c1 & c2)

    def test_ascending_order(self):
        b1 = Bank.from_strings([("a", "ACGTACGTGGAT")])
        b2 = Bank.from_strings([("b", "ACGTGGATTACG")])
        cc = CsrSeedIndex(b1, 4).common_codes(CsrSeedIndex(b2, 4))
        assert (np.diff(cc.codes) > 0).all()

    def test_n_pairs(self):
        b1 = Bank.from_strings([("a", "ACGTACGT")])  # ACGT twice
        b2 = Bank.from_strings([("b", "ACGTACGTACGT")])  # thrice
        cc = CsrSeedIndex(b1, 4).common_codes(CsrSeedIndex(b2, 4))
        # each shared code contributes count1*count2
        k = int(np.searchsorted(cc.codes, code_of_word("ACGT")))
        assert cc.count1[k] * cc.count2[k] == 6

    def test_width_mismatch_rejected(self):
        b = Bank.from_strings([("a", "ACGTACGT")])
        with pytest.raises(ValueError):
            CsrSeedIndex(b, 4).common_codes(CsrSeedIndex(b, 5))

    def test_disjoint_banks(self):
        b1 = Bank.from_strings([("a", "AAAAAAAA")])
        b2 = Bank.from_strings([("b", "GGGGGGGG")])
        cc = CsrSeedIndex(b1, 4).common_codes(CsrSeedIndex(b2, 4))
        assert cc.n_codes == 0
        assert cc.n_pairs == 0
