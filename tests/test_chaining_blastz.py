"""Tests for HSP chaining and the BLASTZ-like baseline."""

import numpy as np
import pytest

from repro.align.chaining import Chain, ChainingParams, chain_hsps
from repro.baselines import (
    BLASTZ_SEED,
    BLASTZ_SEED_TRANSITION,
    BlastzEngine,
    BlastzParams,
)
from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import mutate, random_dna
from repro.encoding import SubsetSeedMask
from repro.io.bank import Bank


def boxes(*rows):
    """rows of (s1, e1, s2, e2, score) -> parallel arrays."""
    a = np.array(rows, dtype=np.int64)
    return a[:, 0], a[:, 1], a[:, 2], a[:, 3], a[:, 4].astype(np.float64)


class TestChainHsps:
    def test_single_anchor(self):
        chains = chain_hsps(*boxes((0, 10, 0, 10, 10)))
        assert len(chains) == 1
        assert chains[0].members == (0,)
        assert chains[0].score == 10

    def test_colinear_pair_chained(self):
        chains = chain_hsps(*boxes((0, 10, 0, 10, 10), (20, 30, 22, 32, 10)))
        assert len(chains) == 1
        assert chains[0].members == (0, 1)
        # score = 10 + 10 - gap(2 diag drift, 10 distance)
        assert chains[0].score == pytest.approx(10 + 10 - 2 * 2 - 0.05 * 10)

    def test_non_colinear_not_chained(self):
        # second box earlier on axis 2: crossing, two chains
        chains = chain_hsps(*boxes((20, 30, 0, 10, 10), (0, 10, 20, 30, 10)))
        assert len(chains) == 2
        assert all(c.n_anchors == 1 for c in chains)

    def test_overlapping_not_chained(self):
        chains = chain_hsps(*boxes((0, 10, 0, 10, 10), (5, 15, 5, 15, 10)))
        assert len(chains) == 2

    def test_far_link_forbidden(self):
        params = ChainingParams(max_link=50)
        chains = chain_hsps(
            *boxes((0, 10, 0, 10, 10), (1000, 1010, 1000, 1010, 10)),
            params=params,
        )
        assert len(chains) == 2

    def test_heavy_gap_breaks_chain(self):
        params = ChainingParams(gap_per_diag=100.0)
        chains = chain_hsps(
            *boxes((0, 10, 0, 10, 10), (20, 30, 60, 70, 10)), params=params
        )
        assert len(chains) == 2  # 40-diag drift at cost 100/diag: never

    def test_three_anchor_chain(self):
        chains = chain_hsps(
            *boxes(
                (0, 10, 0, 10, 10),
                (15, 25, 16, 26, 10),
                (30, 40, 32, 42, 10),
                (500, 510, 5, 15, 10),  # off-chain outlier
            )
        )
        assert chains[0].n_anchors == 3
        assert chains[0].members == (0, 1, 2)

    def test_single_coverage(self):
        chains = chain_hsps(
            *boxes((0, 10, 0, 10, 10), (20, 30, 20, 30, 50), (40, 50, 40, 50, 10))
        )
        seen = [m for c in chains for m in c.members]
        assert len(seen) == len(set(seen))

    def test_min_chain_score_filter(self):
        params = ChainingParams(min_chain_score=100.0)
        chains = chain_hsps(*boxes((0, 10, 0, 10, 10)), params=params)
        assert chains == []

    def test_empty(self):
        z = np.empty(0, dtype=np.int64)
        assert chain_hsps(z, z, z, z, z.astype(np.float64)) == []

    def test_chains_sorted_by_score(self):
        chains = chain_hsps(
            *boxes((0, 10, 0, 10, 5), (100, 160, 100, 160, 60))
        )
        assert chains[0].score >= chains[-1].score


class TestBlastzSeeds:
    def test_templates_valid(self):
        exact = SubsetSeedMask(BLASTZ_SEED.replace("-", "-"))
        trans = SubsetSeedMask(BLASTZ_SEED_TRANSITION)
        assert exact.span == trans.span == 19
        assert exact.n_exact == 12
        assert trans.n_exact == 2 and trans.n_transition == 10

    def test_12_of_19_pattern(self):
        assert BLASTZ_SEED.count("#") == 12
        assert len(BLASTZ_SEED) == 19


class TestBlastzEngine:
    def test_finds_gapped_homology(self, rng):
        core = random_dna(rng, 600)
        # two indel events: chaining across them
        mut = core[:200] + core[208:400] + "GTAC" + core[400:]
        mut = mutate(rng, mut, sub_rate=0.04, indel_rate=0.0)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        res = BlastzEngine(BlastzParams()).compare(b1, b2)
        assert len(res.records) >= 1
        assert sum(r.length for r in res.records) >= 500

    def test_chaining_reduces_gapped_seeds(self, rng):
        core = random_dna(rng, 800)
        mut = mutate(rng, core, sub_rate=0.06, indel_rate=0.01)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        res = BlastzEngine(BlastzParams()).compare(b1, b2)
        # chain filter collapses colinear anchors: fewer gapped extensions
        # than HSPs whenever any chain has >1 anchor
        assert res.counters.n_gapped_extensions <= res.counters.n_hsps

    def test_comparable_to_oris_on_est(self, est_pair):
        from repro.eval import compare_outputs

        oris = OrisEngine(OrisParams()).compare(*est_pair)
        blastz = BlastzEngine(BlastzParams()).compare(*est_pair)
        rep = compare_outputs(oris.records, blastz.records)
        # different seeding policies, same substrate: totals within 2x and
        # cross-misses bounded
        assert 0.5 < rep.sc_total / max(rep.bl_total, 1) < 2.0
        assert rep.scoris_miss_pct < 25.0

    def test_transition_seed_runs(self, rng):
        core = random_dna(rng, 400)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", core)])
        res = BlastzEngine(
            BlastzParams(seed=BLASTZ_SEED_TRANSITION)
        ).compare(b1, b2)
        assert len(res.records) >= 1

    def test_no_homology(self, rng):
        b1 = Bank.from_strings([("q", random_dna(rng, 1200))])
        b2 = Bank.from_strings([("s", random_dna(np.random.default_rng(77), 1200))])
        assert BlastzEngine(BlastzParams()).compare(b1, b2).records == []
