"""Tests for the scoris-n command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, run
from repro.data.synthetic import random_dna
from repro.io.bank import Bank
from repro.io.m8 import read_m8


@pytest.fixture
def fasta_pair(tmp_path, rng):
    core = random_dna(rng, 200)
    b1 = Bank.from_strings([("q1", random_dna(rng, 50) + core)])
    b2 = Bank.from_strings([("s1", core + random_dna(rng, 50))])
    p1, p2 = tmp_path / "a.fa", tmp_path / "b.fa"
    b1.to_fasta(p1)
    b2.to_fasta(p2)
    return str(p1), str(p2)


class TestParser:
    def test_defaults_match_paper(self):
        args = build_parser().parse_args(["a.fa", "b.fa"])
        assert args.word_size == 11
        assert args.evalue == pytest.approx(1e-3)
        assert args.strand == "plus"
        assert args.engine == "oris"
        assert args.filter_kind == "dust"

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["a", "b", "--engine", "bwa"])


class TestRun:
    def test_oris_to_file(self, fasta_pair, tmp_path):
        out = tmp_path / "hits.m8"
        rc = run([*fasta_pair, "-o", str(out)])
        assert rc == 0
        recs = read_m8(out)
        assert len(recs) >= 1
        assert recs[0].query_id == "q1"
        assert recs[0].subject_id == "s1"

    def test_stdout_output(self, fasta_pair, capsys):
        rc = run(list(fasta_pair))
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 1
        assert "q1\ts1" in out

    def test_stats_to_stderr(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--stats"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "step timings" in err
        assert "work:" in err

    @pytest.mark.parametrize("engine", ["oris", "blastn", "blat"])
    def test_all_engines_run(self, fasta_pair, tmp_path, engine):
        out = tmp_path / f"{engine}.m8"
        rc = run([*fasta_pair, "--engine", engine, "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1

    def test_missing_file_error(self, tmp_path, capsys):
        # Unreadable input is an *input* failure (exit 3), not usage.
        rc = run([str(tmp_path / "no.fa"), str(tmp_path / "no2.fa")])
        assert rc == 3
        assert "input error" in capsys.readouterr().err

    def test_word_size_flag(self, fasta_pair, tmp_path):
        out = tmp_path / "w8.m8"
        rc = run([*fasta_pair, "-W", "8", "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1

    def test_asymmetric_flag(self, fasta_pair, tmp_path):
        out = tmp_path / "asym.m8"
        rc = run([*fasta_pair, "--asymmetric", "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1

    def test_both_strands_flag(self, fasta_pair, tmp_path):
        out = tmp_path / "both.m8"
        rc = run([*fasta_pair, "--strand", "both", "-o", str(out)])
        assert rc == 0

    def test_custom_scoring(self, fasta_pair, tmp_path):
        out = tmp_path / "sc.m8"
        rc = run([*fasta_pair, "--match", "2", "--mismatch", "5", "-o", str(out)])
        assert rc == 0


class TestResilientRuntime:
    """The --workers / --checkpoint / --resume surface."""

    def test_workers_matches_serial(self, fasta_pair, tmp_path):
        serial = tmp_path / "serial.m8"
        par = tmp_path / "par.m8"
        assert run([*fasta_pair, "-o", str(serial)]) == 0
        assert run([*fasta_pair, "--workers", "2", "-o", str(par)]) == 0
        assert par.read_text() == serial.read_text()

    def test_checkpoint_then_resume(self, fasta_pair, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = tmp_path / "first.m8"
        second = tmp_path / "second.m8"
        rc = run(
            [*fasta_pair, "--workers", "2", "--checkpoint", str(ckpt),
             "-o", str(first)]
        )
        assert rc == 0
        assert (ckpt / "journal.jsonl").is_file()
        rc = run(
            [*fasta_pair, "--workers", "2", "--checkpoint", str(ckpt),
             "--resume", "-o", str(second)]
        )
        assert rc == 0
        assert second.read_text() == first.read_text()

    def test_runtime_stats_line(self, fasta_pair, tmp_path, capsys):
        rc = run([*fasta_pair, "--workers", "2", "--stats",
                  "-o", str(tmp_path / "x.m8")])
        assert rc == 0
        assert "# runtime:" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--resume"])
        assert rc == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_runtime_requires_oris(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--engine", "blastn", "--workers", "2"])
        assert rc == 2
        assert "oris" in capsys.readouterr().err

    def test_runtime_rejects_both_strands(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--strand", "both", "--workers", "2"])
        assert rc == 2
        assert "single strand" in capsys.readouterr().err

    def test_task_timeout_and_retries_flags(self, fasta_pair, tmp_path):
        out = tmp_path / "t.m8"
        rc = run([*fasta_pair, "--workers", "2", "--task-timeout", "60",
                  "--max-retries", "1", "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1


class TestExitCodes:
    """The documented exit-code taxonomy (see --help epilog)."""

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            run(["--help"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        for code in ("0 ", "2 ", "3 ", "4 ", "5 ", "130 "):
            assert code in out
        assert "exit codes" in out.lower()

    def test_usage_error_is_2(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--resume"])
        assert rc == 2

    def test_corrupt_fasta_is_3(self, fasta_pair, tmp_path, capsys):
        bad = tmp_path / "bad.fa"
        bad.write_text("ACGT\nnot a header\n")
        rc = run([str(bad), fasta_pair[1]])
        assert rc == 3
        err = capsys.readouterr().err
        assert "error[data-before-header]" in err
        assert "Traceback" not in err

    def test_ambiguous_fasta_strict_is_3(self, fasta_pair, tmp_path, capsys):
        iffy = tmp_path / "iffy.fa"
        iffy.write_text(">s1\nACGTRYSWACGTACGT\n")
        rc = run([fasta_pair[0], str(iffy)])
        assert rc == 3
        assert "ambiguous-nucleotides" in capsys.readouterr().err

    def test_ambiguous_fasta_lenient_is_0(self, fasta_pair, tmp_path, capsys):
        iffy = tmp_path / "iffy.fa"
        iffy.write_text(">s1\nACGTRYSWACGTACGT\n")
        rc = run([fasta_pair[0], str(iffy), "--ingest", "lenient"])
        assert rc == 0
        assert "warning[ambiguous-nucleotides]" in capsys.readouterr().err

    def test_corrupt_checkpoint_is_5(self, fasta_pair, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        first = tmp_path / "first.m8"
        rc = run([*fasta_pair, "--workers", "2", "--checkpoint", str(ckpt),
                  "-o", str(first)])
        assert rc == 0
        journal = ckpt / "journal.jsonl"
        lines = journal.read_text().splitlines()
        # Corrupt a *committed* journal line (not the tail, which resume
        # tolerates as a torn write): flip the payload of line 2.
        lines[1] = lines[1][:-20] + '"garbage": "x"}'
        journal.write_text("\n".join(lines) + "\n")
        rc = run([*fasta_pair, "--workers", "2", "--checkpoint", str(ckpt),
                  "--resume", "-o", str(tmp_path / "second.m8")])
        assert rc == 5
        err = capsys.readouterr().err
        assert "corrupt" in err.lower()
        assert "Traceback" not in err

    def test_hopeless_memory_budget_is_4(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--memory-budget", "1M"])
        assert rc == 4
        err = capsys.readouterr().err
        assert "resource exhausted" in err
        assert "Traceback" not in err

    def test_bad_memory_budget_syntax_is_2(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--memory-budget", "lots"])
        assert rc == 2


class TestGovernor:
    """--memory-budget planning and degradation through the CLI."""

    @pytest.fixture
    def big_subject_pair(self, tmp_path, rng):
        # Subject much larger than MIN_TILE_NT so degradation has room to
        # pick a real tile size; a planted core guarantees alignments that
        # straddle tiles see identical results either way.
        core = random_dna(rng, 400)
        b1 = Bank.from_strings([("q1", core)])
        parts = [random_dna(rng, 30_000), core, random_dna(rng, 30_000),
                 core, random_dna(rng, 30_000)]
        b2 = Bank.from_strings([("s1", "".join(parts))])
        p1, p2 = tmp_path / "q.fa", tmp_path / "s.fa"
        b1.to_fasta(p1)
        b2.to_fasta(p2)
        return str(p1), str(p2)

    def test_roomy_budget_stays_monolithic(self, fasta_pair, tmp_path, capsys):
        rc = run([*fasta_pair, "--memory-budget", "8G", "--stats",
                  "-o", str(tmp_path / "m.m8")])
        assert rc == 0
        err = capsys.readouterr().err
        assert "# governor: mode=monolithic" in err

    def test_tight_budget_degrades_to_tiled(self, big_subject_pair, tmp_path,
                                            capsys):
        from repro.runtime.governor import (
            BASELINE_BYTES,
            estimate_index_bytes,
        )

        ref = tmp_path / "ref.m8"
        out = tmp_path / "tiled.m8"
        assert run([*big_subject_pair, "-o", str(ref)]) == 0
        # Admit the query index plus a ~25k nt tile: forces tiling.
        budget = BASELINE_BYTES + estimate_index_bytes(400 + 25_000)
        rc = run([*big_subject_pair, "--memory-budget", str(budget),
                  "--stats", "-o", str(out)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "# governor: mode=tiled" in err
        assert "degrading to tiled indexing" in err
        assert "memory_degradations=1" in err
        assert "tiles=" in err and "tiles=0" not in err
        # Degraded execution must find the same alignments.  E-values of
        # windowed sequences are computed against the window length (a
        # documented, conservative difference -- see compare_tiled), so
        # compare every field except the e-value.
        def alignment_keys(path):
            return [
                (r.query_id, r.subject_id, r.pident, r.length, r.mismatches,
                 r.gap_openings, r.q_start, r.q_end, r.s_start, r.s_end,
                 r.bit_score)
                for r in read_m8(path)
            ]

        assert alignment_keys(out) == alignment_keys(ref)

    def test_degradation_disables_runtime_with_warning(
        self, big_subject_pair, tmp_path, capsys
    ):
        from repro.runtime.governor import (
            BASELINE_BYTES,
            estimate_index_bytes,
        )

        budget = BASELINE_BYTES + estimate_index_bytes(400 + 25_000)
        rc = run([*big_subject_pair, "--memory-budget", str(budget),
                  "--workers", "2", "-o", str(tmp_path / "x.m8")])
        assert rc == 0
        assert "ignor" in capsys.readouterr().err  # ignored/ignoring warning

    def test_budget_requires_oris(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--engine", "blastn",
                  "--memory-budget", "1G"])
        assert rc == 2

    def test_stats_report_rss(self, fasta_pair, tmp_path, capsys):
        rc = run([*fasta_pair, "--stats", "-o", str(tmp_path / "r.m8")])
        assert rc == 0
        err = capsys.readouterr().err
        assert "# resources: rss_peak=" in err
        assert "rss_peak=0B" not in err


class TestIngestFlag:
    def test_skip_policy_drops_bad_records(self, tmp_path, rng, capsys):
        core = random_dna(rng, 200)
        good = Bank.from_strings([("q1", core)])
        q = tmp_path / "q.fa"
        good.to_fasta(q)
        s = tmp_path / "s.fa"
        s.write_text(f">junk\nACGT!!!!\n>s1\n{core}\n")
        out = tmp_path / "o.m8"
        rc = run([str(q), str(s), "--ingest", "skip", "-o", str(out)])
        assert rc == 0
        recs = read_m8(out)
        assert recs and all(r.subject_id == "s1" for r in recs)

    def test_gzip_input_end_to_end(self, tmp_path, rng):
        import gzip

        core = random_dna(rng, 200)
        q = tmp_path / "q.fa"
        Bank.from_strings([("q1", core)]).to_fasta(q)
        sgz = tmp_path / "s.fa.gz"
        sgz.write_bytes(gzip.compress(f">s1\n{core}\n".encode()))
        out = tmp_path / "o.m8"
        rc = run([str(q), str(sgz), "-o", str(out)])
        assert rc == 0
        assert read_m8(out)


class TestObservabilityFlags:
    def test_metrics_json_reports_funnel_with_aborts(
        self, fasta_pair, tmp_path
    ):
        # Acceptance criterion: on an example bank pair the --metrics
        # snapshot shows a funnel where the ordered-seed cutoff fired.
        out = tmp_path / "o.m8"
        metrics = tmp_path / "metrics.json"
        rc = run([*fasta_pair, "-o", str(out), "--metrics", str(metrics)])
        assert rc == 0
        import json

        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "scoris-metrics/1"
        funnel = doc["funnel"]
        aborts = (
            funnel["step2.cutoff_aborts_left"]
            + funnel["step2.cutoff_aborts_right"]
        )
        assert aborts > 0
        assert funnel["step2.hit_pairs"] == funnel["step2.extensions_started"]
        assert funnel["step4.records"] == len(read_m8(out))
        assert doc["timings_seconds"]["total"] >= 0
        assert doc["counters"]["n_pairs"] == funnel["step2.hit_pairs"]
        # The snapshot is loadable back into a consistent registry.
        from repro.obs import MetricsRegistry, check_funnel

        assert check_funnel(MetricsRegistry.from_dict(doc["metrics"])) == []

    def test_trace_writes_valid_jsonl(self, fasta_pair, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        rc = run(
            [*fasta_pair, "-o", str(tmp_path / "o.m8"), "--trace", str(trace)]
        )
        assert rc == 0
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {e["name"] for e in events}
        assert {"ingest", "step1.index", "step2.extend"} <= names
        assert all(e["dur"] >= 0 for e in events)
        # The module-global tracer must not leak into later invocations.
        rc = run([*fasta_pair, "-o", str(tmp_path / "o2.m8")])
        assert rc == 0
        assert len(trace.read_text().splitlines()) == len(events)

    def test_profile_dumps_and_merged_report(self, fasta_pair, tmp_path, capsys):
        prof = tmp_path / "prof"
        rc = run(
            [
                *fasta_pair,
                "-o",
                str(tmp_path / "o.m8"),
                "--profile",
                "cprofile",
                "--profile-out",
                str(prof),
            ]
        )
        assert rc == 0
        assert list(prof.glob("*.pstats"))
        err = capsys.readouterr().err
        assert "merged profile" in err
        assert "cumulative" in err

    def test_stats_prints_funnel_table(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--stats", "-o", "/dev/null"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "# funnel:" in err
        assert "step2 cutoff aborts" in err

    def test_worker_metrics_match_serial(self, fasta_pair, tmp_path):
        import json

        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        rc = run([*fasta_pair, "-o", "/dev/null", "--metrics", str(serial)])
        assert rc == 0
        rc = run(
            [
                *fasta_pair,
                "-o",
                "/dev/null",
                "--workers",
                "2",
                "--metrics",
                str(parallel),
            ]
        )
        assert rc == 0
        f1 = json.loads(serial.read_text())["funnel"]
        f2 = json.loads(parallel.read_text())["funnel"]
        assert f1 == f2


class TestSubcommands:
    def test_explicit_compare_subcommand(self, fasta_pair, tmp_path):
        p1, p2 = fasta_pair
        out = tmp_path / "out.m8"
        implicit = tmp_path / "implicit.m8"
        assert run(["compare", p1, p2, "-o", str(out)]) == 0
        assert run([p1, p2, "-o", str(implicit)]) == 0
        assert out.read_bytes() == implicit.read_bytes()

    def test_serve_parser_shares_parameter_groups(self):
        from repro.cli import build_query_parser, build_serve_parser

        args = build_serve_parser().parse_args(["bank.fa"])
        # The seed/scoring groups are the same ones compare uses.
        assert args.word_size == 11
        assert args.filter_kind == "dust"
        assert args.match == 1 and args.mismatch == 3
        assert args.port == 0 and args.host == "127.0.0.1"
        qargs = build_query_parser().parse_args(
            ["q.fa", "--port", "7878", "--timeout", "5"]
        )
        assert qargs.port == 7878 and qargs.timeout == 5.0

    def test_query_requires_port(self, capsys):
        from repro.cli import build_query_parser

        with pytest.raises(SystemExit):
            build_query_parser().parse_args(["q.fa"])

    def test_serve_and_query_end_to_end(self, fasta_pair, tmp_path):
        from repro.cli import run as cli_run
        from repro.core import OrisParams
        from repro.io.validate import load_bank
        from repro.serve import OrisDaemon, ServeConfig

        p1, p2 = fasta_pair
        reference = tmp_path / "reference.m8"
        assert cli_run([p1, p2, "-o", str(reference)]) == 0

        bank2, _ = load_bank(p2)
        daemon = OrisDaemon(
            bank2, OrisParams(), ServeConfig(n_workers=1, check_memory=False)
        )
        daemon.start()
        _, port = daemon.address
        try:
            served = tmp_path / "served.m8"
            code = cli_run(
                ["query", p1, "--port", str(port), "-o", str(served)]
            )
            assert code == 0
            assert served.read_bytes() == reference.read_bytes()
        finally:
            daemon.shutdown()

    def test_query_connection_refused_is_resource_error(
        self, fasta_pair, capsys
    ):
        import socket

        p1, _ = fasta_pair
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # now certainly nothing is listening there
        assert run(["query", p1, "--port", str(port)]) == 4
        assert "cannot reach daemon" in capsys.readouterr().err


class TestIndexCacheCap:
    def test_cap_flag_parses_sizes(self, fasta_pair, tmp_path):
        p1, p2 = fasta_pair
        cache_dir = tmp_path / "cache"
        assert run(
            [p1, p2, "-o", str(tmp_path / "x.m8"),
             "--index-cache", str(cache_dir),
             "--index-cache-max-bytes", "1G"]
        ) == 0
        assert list(cache_dir.glob("*.scoris3"))

    def test_cap_without_cache_dir_is_usage_error(self, fasta_pair, capsys):
        p1, p2 = fasta_pair
        assert run([p1, p2, "--index-cache-max-bytes", "1G"]) == 2
        assert "--index-cache" in capsys.readouterr().err

    def test_bad_cap_syntax_is_usage_error(self, fasta_pair, tmp_path, capsys):
        p1, p2 = fasta_pair
        code = run(
            [p1, p2, "--index-cache", str(tmp_path / "c"),
             "--index-cache-max-bytes", "lots"]
        )
        assert code == 2

    def test_tiny_cap_evicts_and_reports(self, fasta_pair, tmp_path, capsys):
        p1, p2 = fasta_pair
        cache_dir = tmp_path / "cache"
        # Two different subject banks through a 1-byte cache: the second
        # store evicts the first archive.
        assert run(
            [p1, p2, "-o", str(tmp_path / "a.m8"),
             "--index-cache", str(cache_dir),
             "--index-cache-max-bytes", "1"]
        ) == 0
        assert run(
            [p2, p1, "-o", str(tmp_path / "b.m8"),
             "--index-cache", str(cache_dir),
             "--index-cache-max-bytes", "1"]
        ) == 0
        survivors = list(cache_dir.glob("*.scoris3"))
        assert len(survivors) == 1
