"""Tests for the scoris-n command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, run
from repro.data.synthetic import random_dna
from repro.io.bank import Bank
from repro.io.m8 import read_m8


@pytest.fixture
def fasta_pair(tmp_path, rng):
    core = random_dna(rng, 200)
    b1 = Bank.from_strings([("q1", random_dna(rng, 50) + core)])
    b2 = Bank.from_strings([("s1", core + random_dna(rng, 50))])
    p1, p2 = tmp_path / "a.fa", tmp_path / "b.fa"
    b1.to_fasta(p1)
    b2.to_fasta(p2)
    return str(p1), str(p2)


class TestParser:
    def test_defaults_match_paper(self):
        args = build_parser().parse_args(["a.fa", "b.fa"])
        assert args.word_size == 11
        assert args.evalue == pytest.approx(1e-3)
        assert args.strand == "plus"
        assert args.engine == "oris"
        assert args.filter_kind == "dust"

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["a", "b", "--engine", "bwa"])


class TestRun:
    def test_oris_to_file(self, fasta_pair, tmp_path):
        out = tmp_path / "hits.m8"
        rc = run([*fasta_pair, "-o", str(out)])
        assert rc == 0
        recs = read_m8(out)
        assert len(recs) >= 1
        assert recs[0].query_id == "q1"
        assert recs[0].subject_id == "s1"

    def test_stdout_output(self, fasta_pair, capsys):
        rc = run(list(fasta_pair))
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 1
        assert "q1\ts1" in out

    def test_stats_to_stderr(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--stats"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "step timings" in err
        assert "work:" in err

    @pytest.mark.parametrize("engine", ["oris", "blastn", "blat"])
    def test_all_engines_run(self, fasta_pair, tmp_path, engine):
        out = tmp_path / f"{engine}.m8"
        rc = run([*fasta_pair, "--engine", engine, "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1

    def test_missing_file_error(self, tmp_path, capsys):
        rc = run([str(tmp_path / "no.fa"), str(tmp_path / "no2.fa")])
        assert rc == 2
        assert "error reading banks" in capsys.readouterr().err

    def test_word_size_flag(self, fasta_pair, tmp_path):
        out = tmp_path / "w8.m8"
        rc = run([*fasta_pair, "-W", "8", "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1

    def test_asymmetric_flag(self, fasta_pair, tmp_path):
        out = tmp_path / "asym.m8"
        rc = run([*fasta_pair, "--asymmetric", "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1

    def test_both_strands_flag(self, fasta_pair, tmp_path):
        out = tmp_path / "both.m8"
        rc = run([*fasta_pair, "--strand", "both", "-o", str(out)])
        assert rc == 0

    def test_custom_scoring(self, fasta_pair, tmp_path):
        out = tmp_path / "sc.m8"
        rc = run([*fasta_pair, "--match", "2", "--mismatch", "5", "-o", str(out)])
        assert rc == 0


class TestResilientRuntime:
    """The --workers / --checkpoint / --resume surface."""

    def test_workers_matches_serial(self, fasta_pair, tmp_path):
        serial = tmp_path / "serial.m8"
        par = tmp_path / "par.m8"
        assert run([*fasta_pair, "-o", str(serial)]) == 0
        assert run([*fasta_pair, "--workers", "2", "-o", str(par)]) == 0
        assert par.read_text() == serial.read_text()

    def test_checkpoint_then_resume(self, fasta_pair, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = tmp_path / "first.m8"
        second = tmp_path / "second.m8"
        rc = run(
            [*fasta_pair, "--workers", "2", "--checkpoint", str(ckpt),
             "-o", str(first)]
        )
        assert rc == 0
        assert (ckpt / "journal.jsonl").is_file()
        rc = run(
            [*fasta_pair, "--workers", "2", "--checkpoint", str(ckpt),
             "--resume", "-o", str(second)]
        )
        assert rc == 0
        assert second.read_text() == first.read_text()

    def test_runtime_stats_line(self, fasta_pair, tmp_path, capsys):
        rc = run([*fasta_pair, "--workers", "2", "--stats",
                  "-o", str(tmp_path / "x.m8")])
        assert rc == 0
        assert "# runtime:" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--resume"])
        assert rc == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_runtime_requires_oris(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--engine", "blastn", "--workers", "2"])
        assert rc == 2
        assert "oris" in capsys.readouterr().err

    def test_runtime_rejects_both_strands(self, fasta_pair, capsys):
        rc = run([*fasta_pair, "--strand", "both", "--workers", "2"])
        assert rc == 2
        assert "single strand" in capsys.readouterr().err

    def test_task_timeout_and_retries_flags(self, fasta_pair, tmp_path):
        out = tmp_path / "t.m8"
        rc = run([*fasta_pair, "--workers", "2", "--task-timeout", "60",
                  "--max-retries", "1", "-o", str(out)])
        assert rc == 0
        assert len(read_m8(out)) >= 1
