"""End-to-end tests for the ORIS engine (repro.core.engine)."""

import numpy as np
import pytest

from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import mutate, random_dna
from repro.io.bank import Bank


def record_keys(result):
    return set(
        (r.query_id, r.subject_id, r.q_start, r.q_end, r.s_start, r.s_end)
        for r in result.records
    )


class TestBasicPipeline:
    def test_finds_implanted_homology(self, rng):
        core = random_dna(rng, 120)
        b1 = Bank.from_strings([("q", random_dna(rng, 50) + core + random_dna(rng, 50))])
        b2 = Bank.from_strings([("s", random_dna(rng, 80) + core + random_dna(rng, 20))])
        res = OrisEngine(OrisParams()).compare(b1, b2)
        assert len(res.records) >= 1
        top = res.records[0]
        assert top.length >= 110
        assert top.pident >= 99.0
        # coordinates point at the implanted core
        assert abs(top.q_start - 51) <= 10
        assert abs(top.s_start - 81) <= 10

    def test_no_homology_no_records(self, rng):
        b1 = Bank.from_strings([("q", random_dna(rng, 2000))])
        rng2 = np.random.default_rng(999)
        b2 = Bank.from_strings([("s", random_dna(rng2, 2000))])
        res = OrisEngine(OrisParams()).compare(b1, b2)
        assert res.records == []

    def test_diverged_homology_found(self, rng):
        core = random_dna(rng, 300)
        mut = mutate(rng, core, sub_rate=0.05, indel_rate=0.005)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        res = OrisEngine(OrisParams()).compare(b1, b2)
        assert len(res.records) >= 1
        assert res.records[0].pident > 90

    def test_counters_populated(self, est_pair):
        res = OrisEngine(OrisParams()).compare(*est_pair)
        c = res.counters
        assert c.n_pairs > 0
        assert c.n_hsps > 0
        assert c.n_cut > 0
        assert c.n_alignments >= c.n_records
        assert res.timings.total > 0

    def test_records_sorted_by_evalue(self, est_pair):
        res = OrisEngine(OrisParams()).compare(*est_pair)
        evs = [r.evalue for r in res.records]
        assert evs == sorted(evs)

    def test_deterministic(self, est_pair):
        r1 = OrisEngine(OrisParams()).compare(*est_pair)
        r2 = OrisEngine(OrisParams()).compare(*est_pair)
        assert [x.to_line() for x in r1.records] == [x.to_line() for x in r2.records]


class TestSchedulingParity:
    """All three step-3 schedules approximate the paper's serial loop."""

    def test_waves_match_serial(self, est_pair):
        serial = OrisEngine(OrisParams(gapped_scheduling="serial")).compare(*est_pair)
        waves = OrisEngine(OrisParams(gapped_scheduling="waves")).compare(*est_pair)
        a, b = record_keys(serial), record_keys(waves)
        assert len(a ^ b) <= max(2, len(a) // 50)  # within 2%

    def test_single_matches_serial(self, est_pair):
        serial = OrisEngine(OrisParams(gapped_scheduling="serial")).compare(*est_pair)
        single = OrisEngine(OrisParams(gapped_scheduling="single")).compare(*est_pair)
        a, b = record_keys(serial), record_keys(single)
        assert len(a ^ b) <= max(2, len(a) // 20)  # within 5%

    def test_invalid_scheduling_rejected(self):
        with pytest.raises(ValueError):
            OrisParams(gapped_scheduling="bogus")


class TestOrderedCutoffAblation:
    """Disabling the cutoff + explicit dedup gives the same HSP set."""

    def test_same_records_without_cutoff(self, est_pair):
        on = OrisEngine(OrisParams()).compare(*est_pair)
        off = OrisEngine(OrisParams(ordered_cutoff=False)).compare(*est_pair)
        assert record_keys(on) == record_keys(off)

    def test_cutoff_saves_work(self, est_pair):
        on = OrisEngine(OrisParams()).compare(*est_pair)
        off = OrisEngine(OrisParams(ordered_cutoff=False)).compare(*est_pair)
        # without the rule the kernel completes every duplicate extension
        assert off.counters.ungapped_steps > on.counters.ungapped_steps

    def test_hsps_unique_even_without_cutoff_due_to_dedup(self, est_pair):
        off = OrisEngine(OrisParams(ordered_cutoff=False)).compare(*est_pair)
        on = OrisEngine(OrisParams()).compare(*est_pair)
        assert off.counters.n_hsps == on.counters.n_hsps


class TestStrandSearch:
    def test_minus_strand_found(self, rng):
        from repro.encoding import decode, encode, reverse_complement

        core = random_dna(rng, 150)
        rc_core = decode(reverse_complement(encode(core)))
        b1 = Bank.from_strings([("q", random_dna(rng, 40) + core + random_dna(rng, 40))])
        b2 = Bank.from_strings([("s", random_dna(rng, 30) + rc_core + random_dna(rng, 30))])
        plus = OrisEngine(OrisParams(strand="plus")).compare(b1, b2)
        both = OrisEngine(OrisParams(strand="both")).compare(b1, b2)
        assert len(plus.records) == 0
        assert len(both.records) >= 1
        rec = both.records[0]
        assert rec.minus_strand
        # minus-strand subject coordinates point at the rc core
        lo, hi = rec.s_span
        assert abs(lo - 30) <= 8 and abs(hi - 180) <= 8

    def test_both_strand_superset_of_plus(self, est_pair):
        plus = OrisEngine(OrisParams(strand="plus")).compare(*est_pair)
        both = OrisEngine(OrisParams(strand="both")).compare(*est_pair)
        assert record_keys(plus) <= record_keys(both)


class TestAsymmetricMode:
    def test_asymmetric_finds_what_w11_finds(self, rng):
        # Diverged homology: 10-nt asymmetric indexing should be at least
        # comparable to 11-nt (paper: "a little bit more efficient").
        core = random_dna(rng, 400)
        mut = mutate(rng, core, sub_rate=0.08, indel_rate=0.0)
        b1 = Bank.from_strings([("q", core)])
        b2 = Bank.from_strings([("s", mut)])
        w11 = OrisEngine(OrisParams(w=11)).compare(b1, b2)
        asym = OrisEngine(OrisParams(asymmetric=True)).compare(b1, b2)
        cov11 = sum(r.length for r in w11.records)
        cov10 = sum(r.length for r in asym.records)
        assert cov10 >= cov11 * 0.8

    def test_effective_w(self):
        assert OrisParams(asymmetric=True).effective_w == 10
        assert OrisParams().effective_w == 11


class TestThresholds:
    def test_explicit_s1(self, est_pair):
        low = OrisEngine(OrisParams(hsp_min_score=12)).compare(*est_pair)
        high = OrisEngine(OrisParams(hsp_min_score=40)).compare(*est_pair)
        assert low.counters.n_hsps >= high.counters.n_hsps

    def test_s2_floor(self, est_pair):
        none = OrisEngine(OrisParams()).compare(*est_pair)
        floored = OrisEngine(OrisParams(min_align_score=100)).compare(*est_pair)
        assert floored.counters.n_alignments <= none.counters.n_alignments

    def test_evalue_threshold_monotone(self, est_pair):
        strict = OrisEngine(OrisParams(max_evalue=1e-10)).compare(*est_pair)
        loose = OrisEngine(OrisParams(max_evalue=1e-1)).compare(*est_pair)
        assert len(strict.records) <= len(loose.records)
        assert all(r.evalue <= 1e-10 for r in strict.records)


class TestFilters:
    def test_filter_suppresses_low_complexity_hits(self, rng):
        junk = "AT" * 200
        b1 = Bank.from_strings([("q", random_dna(rng, 200) + junk)])
        b2 = Bank.from_strings([("s", random_dna(rng, 200) + junk)])
        with_filter = OrisEngine(OrisParams(filter_kind="dust")).compare(b1, b2)
        without = OrisEngine(OrisParams(filter_kind="none")).compare(b1, b2)
        assert without.counters.n_pairs > with_filter.counters.n_pairs

    def test_params_validation(self):
        with pytest.raises(ValueError):
            OrisParams(filter_kind="sponge")
        with pytest.raises(ValueError):
            OrisParams(strand="minus")
        with pytest.raises(ValueError):
            OrisParams(w=2)
        with pytest.raises(ValueError):
            OrisParams(chunk_pairs=0)

    def test_with_updates(self):
        p = OrisParams().with_(w=9)
        assert p.w == 9 and OrisParams().w == 11
