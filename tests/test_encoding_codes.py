"""Tests for the paper's 2-bit nucleotide code (repro.encoding.codes)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import (
    A,
    C,
    G,
    T,
    INVALID,
    complement_codes,
    decode,
    encode,
    is_valid,
    reverse_complement,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)
dna_n = st.text(alphabet="ACGTN", min_size=0, max_size=200)


class TestCodeAssignment:
    """The paper's exact (non-alphabetic) code table."""

    def test_paper_code_values(self):
        # Section 2.1: A=00, C=01, G=11, T=10.
        assert (A, C, T, G) == (0b00, 0b01, 0b10, 0b11)

    def test_encode_single_characters(self):
        assert list(encode("ACGT")) == [A, C, G, T]

    def test_lower_case_accepted(self):
        assert list(encode("acgt")) == [A, C, G, T]

    def test_ambiguity_codes_invalid(self):
        for ch in "NRYKMSWBDHVX-. ":
            assert encode(ch)[0] == INVALID

    def test_invalid_sentinel_outside_2bit_range(self):
        assert INVALID >= 4

    def test_encode_bytes_input(self):
        assert list(encode(b"ACGT")) == [A, C, G, T]

    def test_encode_returns_int8(self):
        assert encode("ACGT").dtype == np.int8


class TestDecode:
    def test_round_trip_upper(self):
        assert decode(encode("GATTACA")) == "GATTACA"

    def test_n_round_trip(self):
        assert decode(encode("ACNGT")) == "ACNGT"

    def test_empty(self):
        assert decode(encode("")) == ""

    @given(dna_n)
    def test_round_trip_property(self, s):
        assert decode(encode(s)) == s


class TestComplement:
    """The code assignment makes complement = XOR 0b10."""

    def test_complement_pairs(self):
        comp = complement_codes(encode("ACGT"))
        assert decode(comp) == "TGCA"

    def test_complement_is_xor_two(self):
        arr = encode("ACGTACGT")
        assert np.array_equal(complement_codes(arr), arr ^ 2)

    def test_invalid_stays_invalid(self):
        arr = encode("ANT")
        comp = complement_codes(arr)
        assert comp[1] >= INVALID

    def test_reverse_complement(self):
        assert decode(reverse_complement(encode("AACGT"))) == "ACGTT"

    @given(dna)
    def test_revcomp_involution(self, s):
        arr = encode(s)
        assert np.array_equal(reverse_complement(reverse_complement(arr)), arr)

    @given(dna)
    def test_revcomp_preserves_length(self, s):
        assert reverse_complement(encode(s)).shape[0] == len(s)


class TestIsValid:
    def test_mask(self):
        assert list(is_valid(encode("ANCN"))) == [True, False, True, False]

    @given(dna)
    def test_pure_dna_all_valid(self, s):
        assert is_valid(encode(s)).all()
