"""Tests for scoring schemes and Karlin-Altschul statistics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.evalue import karlin_params
from repro.align.scoring import DEFAULT_SCORING, ScoringScheme


class TestScoringScheme:
    def test_defaults_are_blastn(self):
        s = DEFAULT_SCORING
        assert (s.match, s.mismatch, s.gap_open, s.gap_extend) == (1, 3, 5, 2)

    def test_gap_cost_affine(self):
        s = ScoringScheme()
        assert s.gap_cost(0) == 0
        assert s.gap_cost(1) == 7
        assert s.gap_cost(3) == 11

    def test_seed_score(self):
        assert ScoringScheme().seed_score(11) == 11
        assert ScoringScheme(match=2, mismatch=3).seed_score(11) == 22

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)
        with pytest.raises(ValueError):
            ScoringScheme(mismatch=0)
        with pytest.raises(ValueError):
            ScoringScheme(xdrop_ungapped=0)
        with pytest.raises(ValueError):
            ScoringScheme(gap_open=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_SCORING.match = 2  # type: ignore[misc]


class TestKarlinAltschul:
    def test_ncbi_plus1_minus3(self):
        # NCBI's published ungapped parameters for blastn +1/-3.
        ka = karlin_params(ScoringScheme(match=1, mismatch=3))
        assert ka.lam == pytest.approx(1.374, abs=0.002)
        assert ka.k == pytest.approx(0.711, abs=0.005)
        assert ka.h == pytest.approx(1.307, abs=0.01)

    def test_ncbi_plus1_minus2(self):
        # NCBI's published ungapped parameters for blastn +1/-2.
        ka = karlin_params(ScoringScheme(match=1, mismatch=2))
        assert ka.lam == pytest.approx(1.33, abs=0.01)
        assert ka.k == pytest.approx(0.621, abs=0.01)

    def test_lambda_solves_equation(self):
        ka = karlin_params(ScoringScheme(match=2, mismatch=3))
        val = 0.25 * math.exp(ka.lam * 2) + 0.75 * math.exp(-ka.lam * 3)
        assert val == pytest.approx(1.0, abs=1e-9)

    def test_positive_expected_score_rejected(self):
        with pytest.raises(ValueError):
            karlin_params(ScoringScheme(match=10, mismatch=1))

    def test_evalue_scales_with_search_space(self):
        ka = karlin_params(DEFAULT_SCORING)
        e1 = ka.evalue(40, 10**6, 10**3)
        e2 = ka.evalue(40, 2 * 10**6, 10**3)
        assert e2 == pytest.approx(2 * e1, rel=1e-9)

    def test_evalue_decreases_with_score(self):
        ka = karlin_params(DEFAULT_SCORING)
        assert ka.evalue(50, 10**6, 10**3) < ka.evalue(40, 10**6, 10**3)

    def test_tiny_evalues_do_not_underflow_to_error(self):
        ka = karlin_params(DEFAULT_SCORING)
        assert ka.evalue(10_000, 10**6, 10**3) == 0.0 or ka.evalue(
            10_000, 10**6, 10**3
        ) >= 0.0

    def test_bit_score_formula(self):
        ka = karlin_params(DEFAULT_SCORING)
        s = 30
        expected = (ka.lam * s - math.log(ka.k)) / math.log(2)
        assert ka.bit_score(s) == pytest.approx(expected)

    def test_min_score_for_evalue_is_tight(self):
        ka = karlin_params(DEFAULT_SCORING)
        m, n = 10**6, 10**4
        s = ka.min_score_for_evalue(1e-3, m, n)
        assert ka.evalue(s, m, n) <= 1e-3
        assert ka.evalue(s - 1, m, n) > 1e-3

    def test_vectorised_evalues_match_scalar(self):
        ka = karlin_params(DEFAULT_SCORING)
        scores = np.array([20, 30, 40])
        ns = np.array([100, 1000, 10000])
        vec = ka.evalues(scores, 10**6, ns)
        for i in range(3):
            assert vec[i] == pytest.approx(ka.evalue(int(scores[i]), 10**6, int(ns[i])), rel=1e-9)

    def test_cached(self):
        a = karlin_params(ScoringScheme())
        b = karlin_params(ScoringScheme())
        assert a is b

    @given(st.integers(1, 3), st.integers(2, 5))
    def test_lambda_positive_and_finite(self, m, x):
        if 0.25 * m - 0.75 * x >= 0:
            return
        ka = karlin_params(ScoringScheme(match=m, mismatch=x))
        assert 0 < ka.lam < 10
        assert 0 < ka.k < 1.5
        assert ka.h > 0
