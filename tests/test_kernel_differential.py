"""Kernel differential harness: ``--kernel vector`` vs ``--kernel scalar``.

The vector (tile-sweep) kernel claims *byte-identical* step-2 output to
the scalar lane kernel -- same HSP boxes in the same order, same funnel
counters, same work accounting.  This module probes the claim three ways:

1. hypothesis-generated bank pairs swept across seed widths, scoring
   schemes, x-drop values, S1 floors, soft-masked/ambiguous flanks,
   ``max_occurrences`` caps and the cutoff ablation;
2. the same sweep under spaced- and subset-seed masks (code-equality
   cutoff semantics, span != weight);
3. hand-built adversarial layouts: a seed at position 0, a seed flush
   against the bank end, overlapping self-hits on the main diagonal, and
   all-``N`` windows -- plus direct lane-for-lane kernel comparisons.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.scoring import ScoringScheme
from repro.align.ungapped import batch_extend
from repro.align.vector_kernel import batch_extend_vector
from repro.core.engine import OrisEngine
from repro.core.params import OrisParams
from repro.encoding import seed_codes
from repro.io.bank import Bank
from repro.obs import MetricsRegistry, funnel_dict

# --------------------------------------------------------------------- #
# Engine-level differential: both kernels, identical tables + funnels
# --------------------------------------------------------------------- #

_NOISY = st.text(alphabet="ACGTacgtN", min_size=0, max_size=40)
_EXTRA = st.text(alphabet="ACGTacgtN", min_size=5, max_size=60)


@st.composite
def bank_pair(draw) -> tuple[list[tuple[str, str]], list[tuple[str, str]]]:
    """Two small banks sharing one (possibly mutated) core segment."""
    core = draw(st.text(alphabet="ACGT", min_size=10, max_size=50))
    s1 = draw(_NOISY) + core + draw(_NOISY)
    mut = list(core)
    n_mut = draw(st.integers(0, max(0, len(core) // 8)))
    for _ in range(n_mut):
        i = draw(st.integers(0, len(core) - 1))
        mut[i] = draw(st.sampled_from("ACGTN"))
    s2 = draw(_NOISY) + "".join(mut) + draw(_NOISY)
    seqs1 = [s1] + draw(st.lists(_EXTRA, max_size=2))
    seqs2 = [s2] + draw(st.lists(_EXTRA, max_size=2))
    return (
        [(f"q{i}", s) for i, s in enumerate(seqs1)],
        [(f"s{i}", s) for i, s in enumerate(seqs2)],
    )


def assert_kernels_identical(recs1, recs2, params: OrisParams) -> None:
    """Run steps 1-2 under both kernels; tables and funnels must match."""
    b1 = Bank.from_strings(recs1)
    b2 = Bank.from_strings(recs2)
    tables = {}
    funnels = {}
    for kernel in ("scalar", "vector"):
        registry = MetricsRegistry()
        table = OrisEngine(params.with_(kernel=kernel)).hsp_table(
            b1, b2, registry
        )
        tables[kernel] = table.columns()
        funnels[kernel] = funnel_dict(registry)
    for a, b in zip(tables["scalar"], tables["vector"]):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)
    assert funnels["scalar"] == funnels["vector"]


_PARAMS = {
    "pair": bank_pair(),
    "w": st.sampled_from([4, 5, 6]),
    "mismatch": st.sampled_from([2, 3]),
    "xdrop": st.integers(4, 16),
    "s1_extra": st.integers(1, 10),
    "max_occ": st.sampled_from([None, 2, 8]),
    "ordered": st.booleans(),
}


class TestEngineDifferential:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(**_PARAMS)
    def test_contiguous_seeds(
        self, pair, w, mismatch, xdrop, s1_extra, max_occ, ordered
    ):
        recs1, recs2 = pair
        scoring = ScoringScheme(match=1, mismatch=mismatch, xdrop_ungapped=xdrop)
        params = OrisParams(
            w=w,
            scoring=scoring,
            filter_kind="none",
            hsp_min_score=scoring.seed_score(w) + s1_extra,
            max_occurrences=max_occ,
            ordered_cutoff=ordered,
        )
        assert_kernels_identical(recs1, recs2, params)

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(
        pair=bank_pair(),
        mask=st.sampled_from(["11011", "110101011", "##@-#", "#@#-@#"]),
        mismatch=st.sampled_from([2, 3]),
        xdrop=st.integers(4, 16),
        s1_extra=st.integers(1, 10),
    )
    def test_spaced_and_subset_seeds(self, pair, mask, mismatch, xdrop, s1_extra):
        recs1, recs2 = pair
        scoring = ScoringScheme(match=1, mismatch=mismatch, xdrop_ungapped=xdrop)
        kind = "subset_seed" if set(mask) & {"#", "@"} else "spaced_seed"
        weight = mask.count("1") or mask.count("#") + mask.count("@")
        params = OrisParams(
            scoring=scoring,
            filter_kind="none",
            hsp_min_score=scoring.seed_score(weight) + s1_extra,
            **{kind: mask},
        )
        assert_kernels_identical(recs1, recs2, params)

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        pair=bank_pair(),
        w=st.sampled_from([4, 5]),
        xdrop=st.integers(4, 16),
    )
    def test_softmask_filter_active(self, pair, w, xdrop):
        # dust filtering exercises ok2/eligibility under both kernels.
        recs1, recs2 = pair
        scoring = ScoringScheme(match=1, mismatch=2, xdrop_ungapped=xdrop)
        params = OrisParams(
            w=w,
            scoring=scoring,
            filter_kind="dust",
            hsp_min_score=scoring.seed_score(w) + 2,
        )
        assert_kernels_identical(recs1, recs2, params)


# --------------------------------------------------------------------- #
# Adversarial layouts
# --------------------------------------------------------------------- #


def _params(w=5, **kw) -> OrisParams:
    scoring = ScoringScheme(match=1, mismatch=2, xdrop_ungapped=8)
    kw.setdefault("hsp_min_score", scoring.seed_score(w) + 1)
    return OrisParams(w=w, scoring=scoring, filter_kind="none", **kw)


class TestAdversarialLayouts:
    def test_seed_at_position_zero(self):
        # The shared word is the very first window of both banks, so the
        # left scan's first column is the leading separator.
        recs = [("a", "ACGTACGTAAAA")]
        assert_kernels_identical(recs, [("b", "ACGTACGTTTTT")], _params())

    def test_seed_at_bank_end(self):
        # Shared word flush against the trailing separator: the right
        # scan stops on its first column.
        recs1 = [("a", "TTTTTGCAGCAGC")]
        recs2 = [("b", "AAAAAGCAGCAGC")]
        assert_kernels_identical(recs1, recs2, _params())

    def test_overlapping_self_hits(self):
        # A tandem repeat against itself: every diagonal is packed with
        # overlapping hits, the ordered cutoff's worst case.
        recs = [("r", "ACGACGACGACGACGACGACG")]
        assert_kernels_identical(recs, recs, _params(w=4))

    def test_all_n_windows(self):
        # Ambiguity runs cannot seed and must stop extensions exactly at
        # the first N under both kernels.
        recs1 = [("a", "NNNNNACGTACGTANNNNNACGTACGTA")]
        recs2 = [("b", "ACGTACGTANNNNNNNACGTACGTANNN")]
        assert_kernels_identical(recs1, recs2, _params())

    def test_single_base_sequences(self):
        recs1 = [("a", "A"), ("a2", "ACGTAACGTA")]
        recs2 = [("b", "C"), ("b2", "ACGTAACGTA")]
        assert_kernels_identical(recs1, recs2, _params())


# --------------------------------------------------------------------- #
# Direct lane-for-lane kernel comparison
# --------------------------------------------------------------------- #


def _lane_parity_case(rng, alpha, w):
    n1 = int(rng.integers(w + 1, 300))
    n2 = int(rng.integers(w + 1, 300))
    b1 = Bank.from_strings([("a", "".join(rng.choice(list(alpha), size=n1)))])
    b2 = Bank.from_strings([("b", "".join(rng.choice(list(alpha), size=n2)))])
    codes1 = seed_codes(b1.seq, w)
    codes2 = seed_codes(b2.seq, w)
    sent = 4**w
    v1 = np.nonzero(codes1 < sent)[0]
    v2 = np.nonzero(codes2 < sent)[0]
    if v1.size == 0 or v2.size == 0:
        return None
    i1 = rng.choice(v1, size=min(64, v1.size * v2.size))
    i2 = rng.choice(v2, size=i1.size)
    same = codes1[i1] == codes2[i2]
    p1, p2 = i1[same], i2[same]
    if p1.size == 0:
        return None
    return b1.seq, b2.seq, codes1, p1, p2, codes1[p1]


class TestLaneParity:
    def test_batch_kernels_lane_for_lane(self):
        rng = np.random.default_rng(20080117)
        checked = 0
        for trial in range(40):
            w = int(rng.integers(4, 8))
            alpha = "ACGTN" if trial % 3 == 0 else "AC"
            case = _lane_parity_case(rng, alpha, w)
            if case is None:
                continue
            seq1, seq2, codes1, p1, p2, start_codes = case
            scoring = ScoringScheme(
                match=int(rng.integers(1, 4)),
                mismatch=int(rng.integers(1, 5)),
                xdrop_ungapped=int(rng.integers(3, 30)),
            )
            oc = bool(rng.integers(0, 2))
            me = int(rng.integers(1, 50)) if rng.integers(0, 2) else 1 << 30
            ok2 = (rng.random(seq2.shape[0]) > 0.3) if rng.integers(0, 2) else None
            a = batch_extend(
                seq1, seq2, codes1, p1, p2, start_codes, w, scoring,
                max_extend=me, ordered_cutoff=oc, ok2=ok2,
            )
            b = batch_extend_vector(
                seq1, seq2, codes1, p1, p2, start_codes, w, scoring,
                max_extend=me, ordered_cutoff=oc, ok2=ok2,
            )
            np.testing.assert_array_equal(a.kept, b.kept)
            np.testing.assert_array_equal(a.cut_left, b.cut_left)
            np.testing.assert_array_equal(a.cut_right, b.cut_right)
            # Cut lanes are dead in both kernels; their box coordinates
            # are unspecified.  Every surviving lane must agree exactly.
            k = a.kept
            for f in ("start1", "end1", "start2", "end2", "score"):
                np.testing.assert_array_equal(
                    getattr(a, f)[k], getattr(b, f)[k], err_msg=f
                )
            assert a.steps == b.steps
            checked += 1
        assert checked >= 20  # the sweep must not degenerate
