"""Unit tests for BLASTN-baseline internals (repro.baselines.blastn)."""

import numpy as np
import pytest

from repro.baselines.blastn import (
    BlastnEngine,
    BlastnParams,
    _BatchLookup,
    _segmented_forward_max,
    _two_hit_filter,
)
from repro.data.synthetic import random_dna
from repro.encoding import invalid_code, seed_codes
from repro.index.seed_index import valid_window_mask
from repro.io.bank import Bank


class TestSegmentedForwardMax:
    def test_single_group(self):
        v = np.array([-1, 5, -1, 3, -1], dtype=np.int64)
        g = np.zeros(5, dtype=np.int64)
        out = _segmented_forward_max(v, g)
        assert list(out) == [-1, 5, 5, 5, 5]

    def test_groups_do_not_leak(self):
        v = np.array([9, -1, -1, -1], dtype=np.int64)
        g = np.array([0, 0, 1, 1], dtype=np.int64)
        out = _segmented_forward_max(v, g)
        assert list(out) == [9, 9, -1, -1]

    def test_monotone_within_group(self):
        v = np.array([2, 7, 4, 9], dtype=np.int64)
        g = np.zeros(4, dtype=np.int64)
        out = _segmented_forward_max(v, g)
        assert list(out) == [2, 7, 7, 9]


class TestBatchLookup:
    def make(self, rng, w=6):
        b = Bank.from_strings([("a", random_dna(rng, 300)), ("b", random_dna(rng, 200))])
        codes = seed_codes(b.seq, w)
        ok = valid_window_mask(b, w, None)
        return b, codes, ok

    def test_join_finds_exact_hits(self, rng):
        w = 6
        b, codes, ok = self.make(rng, w)
        lo, hi = b.bounds(0)[0], b.bounds(1)[1]
        lookup = _BatchLookup(codes, ok, lo, hi)
        bad = invalid_code(w)
        db_codes = np.where(ok, codes, bad)
        db_pos, q_pos = lookup.join(db_codes)
        # self-join: every valid position must hit itself at least
        n_valid = int(ok.sum())
        hits = set(zip(db_pos.tolist(), q_pos.tolist()))
        for p in np.nonzero(ok)[0][:50]:
            assert (int(p), int(p)) in hits
        assert len(db_pos) >= n_valid

    def test_window_restriction(self, rng):
        w = 6
        b, codes, ok = self.make(rng, w)
        s1, e1 = b.bounds(0)
        lookup = _BatchLookup(codes, ok, s1, e1)  # first sequence only
        bad = invalid_code(w)
        db_codes = np.where(ok, codes, bad)
        _, q_pos = lookup.join(db_codes)
        assert q_pos.size == 0 or q_pos.max() < e1

    def test_empty_batch(self, rng):
        w = 6
        b, codes, ok = self.make(rng, w)
        lookup = _BatchLookup(codes, np.zeros_like(ok), 0, len(codes))
        assert lookup.n_words == 0
        db, q = lookup.join(codes)
        assert db.size == 0 and q.size == 0


class TestTwoHitFilter:
    def test_pair_within_window_kept(self):
        w = 11
        # two non-overlapping hits on one diagonal, 20 apart
        db = np.array([100, 120], dtype=np.int64)
        q = np.array([50, 70], dtype=np.int64)
        db2, q2 = _two_hit_filter(db, q, w, window=40)
        assert list(db2) == [120]  # the second (triggering) hit survives

    def test_overlapping_pair_dropped(self):
        w = 11
        db = np.array([100, 105], dtype=np.int64)  # overlap (< w apart)
        q = np.array([50, 55], dtype=np.int64)
        db2, _ = _two_hit_filter(db, q, w, window=40)
        assert db2.size == 0

    def test_far_pair_dropped(self):
        w = 11
        db = np.array([100, 200], dtype=np.int64)  # beyond window
        q = np.array([50, 150], dtype=np.int64)
        db2, _ = _two_hit_filter(db, q, w, window=40)
        assert db2.size == 0

    def test_different_diagonals_not_paired(self):
        w = 11
        db = np.array([100, 120], dtype=np.int64)
        q = np.array([50, 65], dtype=np.int64)  # diag 50 vs 55
        db2, _ = _two_hit_filter(db, q, w, window=40)
        assert db2.size == 0


class TestQueryBatches:
    def test_whole_sequences_only(self, rng):
        b = Bank.from_strings(
            [(f"s{i}", random_dna(rng, 100 + 10 * i)) for i in range(5)]
        )
        engine = BlastnEngine(BlastnParams(query_batch_nt=250))
        batches = list(engine._query_batches(b))
        # every batch boundary coincides with sequence bounds
        bounds = {b.bounds(i)[0] for i in range(5)} | {b.bounds(i)[1] for i in range(5)}
        for lo, hi in batches:
            assert lo in bounds and hi in bounds
        # batches cover all sequences in order without overlap
        assert batches[0][0] == b.bounds(0)[0]
        assert batches[-1][1] == b.bounds(4)[1]
        for (a1, b1), (a2, b2) in zip(batches, batches[1:]):
            assert b1 <= a2

    def test_per_query_default(self, rng):
        b = Bank.from_strings([(f"s{i}", random_dna(rng, 50)) for i in range(4)])
        engine = BlastnEngine(BlastnParams())  # query_batch_nt=1
        assert len(list(engine._query_batches(b))) == 4

    def test_single_big_batch(self, rng):
        b = Bank.from_strings([(f"s{i}", random_dna(rng, 50)) for i in range(4)])
        engine = BlastnEngine(BlastnParams(query_batch_nt=10**9))
        assert len(list(engine._query_batches(b))) == 1
