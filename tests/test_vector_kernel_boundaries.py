"""Boundary-condition tests for the 2-bit packed tile-sweep kernel.

The packed representation has internal edges the differential fuzz only
hits by luck: bank lengths that straddle 32-column pack words and
64-column validity words, extensions that stop mid-word at a sequence
boundary, matches long enough to carry lane state across several tiles
(and across the narrow->wide tile schedule), and the ``max_extend`` cap
landing inside a tile.  Each case here pins one of those edges against
the scalar kernel or against first principles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.scoring import ScoringScheme
from repro.align.ungapped import batch_extend
from repro.align.vector_kernel import batch_extend_vector
from repro.encoding import INVALID, encode, seed_codes
from repro.encoding.packed import PAD, PackedBank, bit_columns, match_columns
from repro.io.bank import Bank

SCORING = ScoringScheme(match=1, mismatch=2, xdrop_ungapped=10)


def _both(seq1, seq2, codes1, p1, p2, w, **kw):
    start = codes1[np.asarray(p1)]
    a = batch_extend(
        seq1, seq2, codes1, np.asarray(p1), np.asarray(p2), start, w,
        kw.pop("scoring", SCORING), **kw,
    )
    b = batch_extend_vector(
        seq1, seq2, codes1, np.asarray(p1), np.asarray(p2), start, w,
        SCORING if "scoring" not in kw else kw["scoring"], **kw,
    )
    return a, b


def _assert_equal(a, b):
    np.testing.assert_array_equal(a.kept, b.kept)
    np.testing.assert_array_equal(a.cut_left, b.cut_left)
    np.testing.assert_array_equal(a.cut_right, b.cut_right)
    k = a.kept
    for f in ("start1", "end1", "start2", "end2", "score"):
        np.testing.assert_array_equal(getattr(a, f)[k], getattr(b, f)[k], err_msg=f)
    assert a.steps == b.steps


# --------------------------------------------------------------------- #
# PackedBank representation edges
# --------------------------------------------------------------------- #


class TestPackedBank:
    @pytest.mark.parametrize("n", [1, 31, 32, 33, 63, 64, 65, 127, 128, 129])
    def test_roundtrip_at_word_boundaries(self, n):
        rng = np.random.default_rng(n)
        seq = rng.integers(0, 4, size=n).astype(np.int8)
        seq[rng.random(n) < 0.2] = INVALID  # salt with separators
        packed = PackedBank(seq)
        # A window gathered at every start (including overhang on both
        # sides) must reproduce the per-column codes and validity.
        for start in (-5, -1, 0, 1, n // 2, n - 1, n):
            words = packed.gather_words(np.array([start]), 2)
            got = match_columns(words ^ words)  # trivially all-match
            assert got.all()  # sanity: XOR with self is always equal
            vmask = bit_columns(packed.gather_valid(np.array([start])))[0]
            for j in range(64):
                pos = start + j
                want = 0 <= pos < n and seq[pos] < INVALID
                assert vmask[j] == want, (start, j)

    def test_match_columns_against_codes(self):
        rng = np.random.default_rng(7)
        s1 = rng.integers(0, 4, size=100).astype(np.int8)
        s2 = rng.integers(0, 4, size=100).astype(np.int8)
        pk1, pk2 = PackedBank(s1), PackedBank(s2)
        starts = np.arange(-3, 99, 7)
        x = pk1.gather_words(starts, 2) ^ pk2.gather_words(starts, 2)
        eq = match_columns(x)
        valid = bit_columns(pk1.gather_valid(starts) & pk2.gather_valid(starts))
        for i, s in enumerate(starts):
            for j in range(64):
                p = s + j
                inside = 0 <= p < 100
                assert valid[i, j] == inside
                if inside:
                    assert (eq[i, j] & valid[i, j]) == (s1[p] == s2[p])

    def test_pad_is_invalid(self):
        packed = PackedBank(np.zeros(10, dtype=np.int8))
        before = packed.gather_valid(np.array([-PAD]))
        assert not bit_columns(before)[0, :64].any()


# --------------------------------------------------------------------- #
# Kernel edges
# --------------------------------------------------------------------- #


def _bank_pair(s1: str, s2: str, w: int):
    b1 = Bank.from_strings([("a", s1)])
    b2 = Bank.from_strings([("b", s2)])
    return b1.seq, b2.seq, seed_codes(b1.seq, w)


class TestKernelBoundaries:
    @pytest.mark.parametrize("n", [31, 32, 33, 63, 64, 65])
    def test_extension_hits_end_mid_word(self, n):
        # Identical banks whose length straddles a pack-word boundary:
        # the right scan must stop exactly at the trailing separator.
        rng = np.random.default_rng(n)
        s = "".join(rng.choice(list("ACGT"), size=n))
        w = 5
        seq1, seq2, codes1 = _bank_pair(s, s, w)
        a, b = _both(seq1, seq2, codes1, [1], [1], w, ordered_cutoff=False)
        _assert_equal(a, b)
        assert bool(a.kept[0])
        assert int(b.end1[0]) == 1 + n  # ran to the separator, not past

    def test_extension_hits_start_mid_word(self):
        w = 5
        s = "ACGTACGTACGTACGTACGTACGTACGTACGTAAA"
        seq1, seq2, codes1 = _bank_pair(s, s, w)
        p = len(s) - w  # seed at the last window; left scan spans the bank
        a, b = _both(seq1, seq2, codes1, [1 + p], [1 + p], w, ordered_cutoff=False)
        _assert_equal(a, b)
        assert int(b.start1[0]) == 1  # stopped at the leading separator

    def test_single_base_flanks(self):
        # Sequence so short the first scanned column is already invalid
        # on both sides.
        w = 4
        seq1, seq2, codes1 = _bank_pair("ACGT", "ACGT", w)
        a, b = _both(seq1, seq2, codes1, [1], [1], w, ordered_cutoff=False)
        _assert_equal(a, b)
        assert int(b.start1[0]) == 1 and int(b.end1[0]) == 5

    def test_shared_diagonal_candidates(self):
        # Many seeds of one repeat share a diagonal; with the ordered
        # cutoff on, all but the lowest-code seed must be cut, in both
        # kernels, lane for lane.
        w = 4
        s = "TGCATGCATGCATGCATGCATGCATGCA"
        seq1, seq2, codes1 = _bank_pair(s, s, w)
        sent = 4**w
        pos = np.nonzero(codes1 < sent)[0]
        diag = [(int(p), int(p)) for p in pos]  # self-hits, one diagonal
        p1 = np.array([d[0] for d in diag])
        p2 = np.array([d[1] for d in diag])
        a, b = _both(seq1, seq2, codes1, p1, p2, w, ordered_cutoff=True)
        _assert_equal(a, b)
        assert int(a.kept.sum()) == 1  # exactly one survivor per diagonal

    @pytest.mark.parametrize("length", [150, 300, 700])
    def test_long_match_carries_across_tiles(self, length):
        # Perfect matches far beyond one 64-column tile: lane state
        # (score, run, best offset) must carry exactly through the
        # adaptive schedule and multiple steady-state tiles.
        rng = np.random.default_rng(length)
        s = "".join(rng.choice(list("ACGT"), size=length))
        w = 6
        seq1, seq2, codes1 = _bank_pair(s, s, w)
        mid = length // 2
        a, b = _both(seq1, seq2, codes1, [1 + mid], [1 + mid], w,
                     ordered_cutoff=False)
        _assert_equal(a, b)
        assert int(b.start1[0]) == 1 and int(b.end1[0]) == 1 + length
        assert int(b.score[0]) == length * SCORING.match

    @pytest.mark.parametrize("cap", [1, 7, 8, 9, 23, 24, 25, 55, 56, 57, 64, 100])
    def test_max_extend_cap_inside_tiles(self, cap):
        # Caps landing before, on and after each tile-schedule boundary
        # (8, 24, 56, then 64-wide tiles).
        rng = np.random.default_rng(cap)
        s = "".join(rng.choice(list("ACGT"), size=200))
        w = 5
        seq1, seq2, codes1 = _bank_pair(s, s, w)
        a, b = _both(
            seq1, seq2, codes1, [100], [100], w,
            ordered_cutoff=False, max_extend=cap,
        )
        _assert_equal(a, b)

    def test_mismatch_tail_after_long_match(self):
        # x-drop fires mid-tile after a long perfect prefix; the best
        # offset must point at the last improving column, not the stop.
        w = 5
        core = "ACGTA" * 30
        s1 = core + "AAAAAAAAAAAAAAAA"
        s2 = core + "CCCCCCCCCCCCCCCC"
        seq1, seq2, codes1 = _bank_pair(s1, s2, w)
        a, b = _both(seq1, seq2, codes1, [1], [1], w, ordered_cutoff=False)
        _assert_equal(a, b)
        assert int(b.end1[0]) == 1 + len(core)

    def test_raw_encoded_arrays_with_guards(self):
        # The kernel contract also covers raw encoded arrays (no Bank),
        # as long as separators guard both ends -- mirror of how tests
        # drive the scalar kernel directly.
        w = 4
        raw1 = np.concatenate(
            ([INVALID], encode("ACGTACGTACGT"), [INVALID])
        ).astype(np.int8)
        raw2 = raw1.copy()
        codes1 = seed_codes(raw1, w)
        a, b = _both(raw1, raw2, codes1, [1], [1], w, ordered_cutoff=False)
        _assert_equal(a, b)
