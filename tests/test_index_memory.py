"""Tests for the index memory accounting (paper section 3.1)."""

import pytest

from repro.data.synthetic import random_dna
from repro.index import csr_memory_report, index_memory_report, predicted_bytes
from repro.index.memory import IndexMemoryReport
from repro.io.bank import Bank


class TestPaperClaim:
    def test_five_bytes_per_nt_excluding_dictionary(self, rng):
        # "The index structure required for storing a bank of size N ...
        # is approximately equal to 5 x N bytes."
        b = Bank.from_strings([("a", random_dna(rng, 20000))])
        rep = index_memory_report(b, w=11)
        assert rep.bytes_per_nt_excluding_dictionary == pytest.approx(5.0, rel=0.01)

    def test_total_includes_dictionary_constant(self, rng):
        b = Bank.from_strings([("a", random_dna(rng, 5000))])
        rep = index_memory_report(b, w=8)
        assert rep.dictionary_bytes == 4 * 4**8
        assert rep.total_bytes == rep.seq_bytes + rep.index_bytes + rep.dictionary_bytes

    def test_prediction_tracks_measurement(self, rng):
        b = Bank.from_strings([("a", random_dna(rng, 30000))])
        rep = index_memory_report(b, w=8)
        pred = predicted_bytes(b.size_nt, w=8)
        assert rep.total_bytes == pytest.approx(pred, rel=0.01)

    def test_paper_example_40mb_needs_200mb_per_bank(self):
        # "Comparing ... two chromosomes of 40 MBytes will require, at
        # least, a free memory space of 400 MBytes" => ~5N per bank (the
        # W=11 dictionary adds a constant ~17 MB on top of the 200 MB).
        assert predicted_bytes(40_000_000, w=11) == pytest.approx(
            200_000_000, rel=0.10
        )


class TestCsrAccounting:
    def test_csr_not_larger_than_linked(self, rng):
        # CSR stores one int per *indexed* window (< one per slot) plus a
        # code table; for real DNA it is comparable or smaller.
        b = Bank.from_strings([("a", random_dna(rng, 20000))])
        linked = index_memory_report(b, w=11)
        csr = csr_memory_report(b, w=11)
        assert csr.seq_bytes == linked.seq_bytes
        assert csr.index_bytes <= linked.index_bytes

    def test_report_fields(self, rng):
        b = Bank.from_strings([("a", random_dna(rng, 1000))])
        rep = csr_memory_report(b, w=6)
        assert isinstance(rep, IndexMemoryReport)
        assert rep.bank_nt == 1000
        assert rep.total_bytes > 0
