"""Tests for the reference optimal aligners (repro.align.classic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.classic import (
    AlignmentPath,
    gotoh_local,
    local_score_matrix,
    needleman_wunsch,
    smith_waterman,
)
from repro.align.scoring import ScoringScheme
from repro.data.synthetic import mutate, random_dna

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


def rescore_linear(path: AlignmentPath, scoring: ScoringScheme) -> int:
    """Recompute a path's score from its aligned strings (linear gaps)."""
    score = 0
    for a, b in zip(path.aligned1, path.aligned2):
        if a == "-" or b == "-":
            score -= scoring.gap_open
        elif a == b:
            score += scoring.match
        else:
            score -= scoring.mismatch
    return score


def rescore_affine(path: AlignmentPath, scoring: ScoringScheme) -> int:
    """Recompute with affine costs (gap_open + len*gap_extend per run)."""
    score = 0
    run = None  # which side is gapped
    for a, b in zip(path.aligned1, path.aligned2):
        if a == "-" or b == "-":
            side = 1 if a == "-" else 2
            if run != side:
                score -= scoring.gap_open
                run = side
            score -= scoring.gap_extend
        else:
            run = None
            score += scoring.match if a == b else -scoring.mismatch
    return score


class TestNeedlemanWunsch:
    def test_identical(self, scoring):
        p = needleman_wunsch("ACGTACGT", "ACGTACGT", scoring)
        assert p.score == 8
        assert p.aligned1 == p.aligned2 == "ACGTACGT"

    def test_known_gap(self, scoring):
        p = needleman_wunsch("ACGT", "AGT", scoring)
        # best: delete C -> 3 matches - 1 gap = 3 - 5 = -2
        assert p.score == -2

    def test_global_consumes_everything(self, scoring):
        p = needleman_wunsch("AAAA", "TTTT", scoring)
        assert p.end1 == 4 and p.end2 == 4

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_traceback_rescores(self, s1, s2):
        sc = ScoringScheme()
        p = needleman_wunsch(s1, s2, sc)
        assert rescore_linear(p, sc) == p.score
        # global: both sequences fully consumed
        assert p.aligned1.replace("-", "") == s1
        assert p.aligned2.replace("-", "") == s2


class TestSmithWaterman:
    def test_finds_implanted_core(self, rng, scoring):
        core = random_dna(rng, 25)
        s1 = random_dna(rng, 20) + core + random_dna(rng, 20)
        s2 = random_dna(rng, 10) + core + random_dna(rng, 30)
        p = smith_waterman(s1, s2, scoring)
        assert p.score >= 25 - 2  # near the full core score
        assert core in (s1[p.start1 : p.end1] + "  ")[: len(core) + 2] or p.score >= 20

    def test_no_negative_score(self, scoring):
        p = smith_waterman("AAAA", "TTTT", scoring)
        assert p.score == 0

    def test_local_score_matrix_max(self, rng, scoring):
        s1, s2 = random_dna(rng, 30), random_dna(rng, 30)
        H = local_score_matrix(s1, s2, scoring)
        assert H.max() == smith_waterman(s1, s2, scoring).score

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_traceback_rescores(self, s1, s2):
        sc = ScoringScheme()
        p = smith_waterman(s1, s2, sc)
        assert rescore_linear(p, sc) == p.score

    @settings(max_examples=20, deadline=None)
    @given(dna, dna)
    def test_local_at_least_zero_and_bounded(self, s1, s2):
        sc = ScoringScheme()
        p = smith_waterman(s1, s2, sc)
        assert 0 <= p.score <= min(len(s1), len(s2)) * sc.match


class TestGotoh:
    def test_affine_prefers_one_long_gap(self, rng):
        sc = ScoringScheme(match=1, mismatch=3, gap_open=5, gap_extend=1)
        core = random_dna(rng, 40)
        s2 = core[:20] + core[26:]  # 6-nt deletion
        p = gotoh_local(core, s2, sc)
        gaps1 = [len(run) for run in p.aligned2.split("-") if run == ""]
        # one gap run of length 6 expected: affine cost 5+6 < two runs
        n_runs = 0
        in_run = False
        for a, b in zip(p.aligned1, p.aligned2):
            g = a == "-" or b == "-"
            if g and not in_run:
                n_runs += 1
            in_run = g
        assert n_runs == 1

    def test_identical(self, rng, scoring):
        s = random_dna(rng, 30)
        p = gotoh_local(s, s, scoring)
        assert p.score == 30

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_traceback_rescores_affine(self, s1, s2):
        sc = ScoringScheme()
        p = gotoh_local(s1, s2, sc)
        assert rescore_affine(p, sc) == p.score

    @settings(max_examples=20, deadline=None)
    @given(dna, dna)
    def test_gotoh_at_least_sw_with_heavier_gaps(self, s1, s2):
        # With gap_extend < gap_open, affine never scores worse than the
        # linear scheme that charges gap_open per column.
        sc = ScoringScheme()
        affine = gotoh_local(s1, s2, sc).score
        linear = smith_waterman(s1, s2, sc).score
        assert affine >= linear


class TestCrossValidation:
    """Engines vs optimal DP: a local alignment score is an upper bound."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hsp_scores_bounded_by_smith_waterman(self, seed):
        rng = np.random.default_rng(seed)
        from repro.align.ungapped import extend_hit_ref
        from repro.encoding import seed_codes
        from repro.index import CsrSeedIndex
        from repro.io.bank import Bank

        core = random_dna(rng, 40)
        mut = mutate(rng, core, sub_rate=0.05, indel_rate=0.0)
        s1 = random_dna(rng, 15) + core + random_dna(rng, 15)
        s2 = random_dna(rng, 10) + mut + random_dna(rng, 20)
        b1 = Bank.from_strings([("a", s1)])
        b2 = Bank.from_strings([("b", s2)])
        sc = ScoringScheme()
        sw = smith_waterman(s1, s2, sc).score
        w = 6
        i1 = CsrSeedIndex(b1, w, None)
        i2 = CsrSeedIndex(b2, w, None)
        cc = i1.common_codes(i2)
        for k in range(cc.n_codes):
            for a in i1.positions[cc.start1[k] : cc.start1[k] + cc.count1[k]]:
                for b in i2.positions[cc.start2[k] : cc.start2[k] + cc.count2[k]]:
                    r = extend_hit_ref(
                        b1.seq, b2.seq, i1.codes_at, int(a), int(b), w, sc
                    )
                    if r is not None:
                        assert r[4] <= sw
