"""Tests for hit-pair enumeration (repro.core.pairs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairs import (
    iter_pair_chunks,
    pair_costs,
    segmented_cartesian,
    split_balanced_ranges,
)
from repro.index.seed_index import CommonCodes
from repro.index import CsrSeedIndex
from repro.io.bank import Bank
from repro.data.synthetic import random_dna


class TestSegmentedCartesian:
    def test_single_segment_row_major(self):
        pos1 = np.array([10, 20])
        pos2 = np.array([5, 6, 7])
        chunk = segmented_cartesian(
            pos1, pos2,
            np.array([0]), np.array([2]),
            np.array([0]), np.array([3]),
            np.array([42]),
        )
        assert list(chunk.p1) == [10, 10, 10, 20, 20, 20]
        assert list(chunk.p2) == [5, 6, 7, 5, 6, 7]
        assert set(chunk.codes) == {42}
        assert chunk.n_pairs == 6

    def test_multiple_segments(self):
        pos1 = np.array([1, 2, 3])
        pos2 = np.array([7, 8, 9])
        chunk = segmented_cartesian(
            pos1, pos2,
            np.array([0, 2]), np.array([2, 1]),
            np.array([0, 1]), np.array([1, 2]),
            np.array([5, 6]),
        )
        # segment 0: {1,2} x {7}; segment 1: {3} x {8,9}
        assert list(chunk.p1) == [1, 2, 3, 3]
        assert list(chunk.p2) == [7, 7, 8, 9]
        assert list(chunk.codes) == [5, 5, 6, 6]

    def test_empty(self):
        z = np.empty(0, dtype=np.int64)
        chunk = segmented_cartesian(z, z, z, z, z, z, z)
        assert chunk.n_pairs == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=6))
    def test_pair_count_matches_products(self, shape):
        counts1 = np.array([a for a, _ in shape], dtype=np.int64)
        counts2 = np.array([b for _, b in shape], dtype=np.int64)
        total1, total2 = int(counts1.sum()), int(counts2.sum())
        pos1 = np.arange(total1, dtype=np.int64)
        pos2 = np.arange(100, 100 + total2, dtype=np.int64)
        starts1 = np.concatenate(([0], np.cumsum(counts1)))[:-1]
        starts2 = np.concatenate(([0], np.cumsum(counts2)))[:-1]
        codes = np.arange(len(shape), dtype=np.int64)
        chunk = segmented_cartesian(pos1, pos2, starts1, counts1, starts2, counts2, codes)
        assert chunk.n_pairs == int((counts1 * counts2).sum())
        # codes non-decreasing (enumeration order preserved)
        assert (np.diff(chunk.codes) >= 0).all()


class TestIterPairChunks:
    def make_indexes(self, rng):
        b1 = Bank.from_strings([("a", random_dna(rng, 800))])
        b2 = Bank.from_strings([("b", random_dna(rng, 800))])
        i1, i2 = CsrSeedIndex(b1, 5), CsrSeedIndex(b2, 5)
        return i1, i2, i1.common_codes(i2)

    def test_covers_all_pairs_once(self, rng):
        i1, i2, cc = self.make_indexes(rng)
        seen = set()
        total = 0
        for chunk in iter_pair_chunks(i1, i2, cc, chunk_pairs=64):
            for a, b, c in zip(chunk.p1, chunk.p2, chunk.codes):
                key = (int(a), int(b))
                assert key not in seen
                seen.add(key)
            total += chunk.n_pairs
        assert total == cc.n_pairs

    def test_codes_ascending_across_chunks(self, rng):
        i1, i2, cc = self.make_indexes(rng)
        last = -1
        for chunk in iter_pair_chunks(i1, i2, cc, chunk_pairs=32):
            assert chunk.codes[0] >= last
            assert (np.diff(chunk.codes) >= 0).all()
            last = int(chunk.codes[-1])

    def test_chunk_sizes_respect_target(self, rng):
        i1, i2, cc = self.make_indexes(rng)
        max_product = int((cc.count1 * cc.count2).max())
        for chunk in iter_pair_chunks(i1, i2, cc, chunk_pairs=50):
            assert chunk.n_pairs <= 50 + max_product

    def test_max_occurrences_drops_heavy_codes(self, rng):
        b1 = Bank.from_strings([("a", "AC" * 100 + random_dna(rng, 100))])
        b2 = Bank.from_strings([("b", "AC" * 100 + random_dna(rng, 100))])
        i1, i2 = CsrSeedIndex(b1, 4, None), CsrSeedIndex(b2, 4, None)
        cc = i1.common_codes(i2)
        full = sum(c.n_pairs for c in iter_pair_chunks(i1, i2, cc, 1 << 12))
        capped = sum(
            c.n_pairs for c in iter_pair_chunks(i1, i2, cc, 1 << 12, max_occurrences=10)
        )
        assert capped < full

    def test_empty_common(self):
        b1 = Bank.from_strings([("a", "AAAAAAA")])
        b2 = Bank.from_strings([("b", "GGGGGGG")])
        i1, i2 = CsrSeedIndex(b1, 4), CsrSeedIndex(b2, 4)
        cc = i1.common_codes(i2)
        assert list(iter_pair_chunks(i1, i2, cc, 100)) == []


def _common(count1, count2):
    c1 = np.asarray(count1, dtype=np.int64)
    c2 = np.asarray(count2, dtype=np.int64)
    n = c1.shape[0]
    z = np.zeros(n, dtype=np.int64)
    return CommonCodes(
        codes=np.arange(n, dtype=np.int64),
        start1=z, count1=c1, start2=z.copy(), count2=c2,
    )


class TestPairCosts:
    def test_products(self):
        cc = _common([2, 3, 0], [5, 1, 9])
        np.testing.assert_array_equal(pair_costs(cc), [10, 3, 0])

    def test_max_occurrences_zeroes_heavy_codes(self):
        cc = _common([2, 100, 3], [5, 1, 200])
        np.testing.assert_array_equal(
            pair_costs(cc, max_occurrences=50), [10, 0, 0]
        )
        # the capped costs match what iter_pair_chunks will actually skip

    def test_no_overflow_on_large_counts(self):
        cc = _common([100_000], [100_000])
        assert pair_costs(cc)[0] == 10_000_000_000  # > int32


class TestSplitBalancedRanges:
    def _check_partition(self, ranges, n_codes):
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_codes
        for (_, b1), (a2, _) in zip(ranges, ranges[1:]):
            assert b1 == a2

    def test_uniform_costs_split_evenly(self):
        costs = np.ones(100, dtype=np.int64)
        ranges = split_balanced_ranges(costs, 4)
        self._check_partition(ranges, 100)
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_skewed_costs_are_balanced(self):
        # one huge code among many cheap ones: the legacy equal-count
        # split would put the giant plus 1/4 of the cheap work in one
        # chunk; balanced isolates it.
        costs = np.ones(1000, dtype=np.int64)
        costs[500] = 1000
        ranges = split_balanced_ranges(costs, 8)
        self._check_partition(ranges, 1000)
        csum = np.concatenate(([0], np.cumsum(costs)))
        chunk_costs = np.array([csum[hi] - csum[lo] for lo, hi in ranges])
        nz = chunk_costs[chunk_costs > 0]
        assert nz.max() / nz.min() <= 1.5

    def test_single_chunk(self):
        ranges = split_balanced_ranges(np.ones(10, dtype=np.int64), 1)
        assert ranges == [(0, 10)]

    def test_zero_total_cost_collapses_to_one_chunk(self):
        ranges = split_balanced_ranges(np.zeros(10, dtype=np.int64), 4)
        assert ranges == [(0, 10)]

    def test_empty(self):
        assert split_balanced_ranges(np.empty(0, dtype=np.int64), 4) == []

    def test_never_more_chunks_than_codes(self):
        ranges = split_balanced_ranges(np.ones(3, dtype=np.int64), 16)
        self._check_partition(ranges, 3)
        assert len(ranges) <= 3

    def test_dominant_code_limits_chunk_count(self):
        # One code carries ~all the cost: no split can beat one chunk of
        # that cost, so the planner must not fragment the cheap tail into
        # chunks that violate the balance ratio.
        costs = np.ones(100, dtype=np.int64)
        costs[0] = 10_000
        ranges = split_balanced_ranges(costs, 8)
        self._check_partition(ranges, 100)
        csum = np.concatenate(([0], np.cumsum(costs)))
        chunk_costs = np.array([csum[hi] - csum[lo] for lo, hi in ranges])
        nz = chunk_costs[chunk_costs > 0]
        assert nz.max() / nz.min() <= 1.5

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=200),
        st.integers(1, 16),
    )
    def test_partition_invariants_hold(self, costs, n_chunks):
        costs = np.asarray(costs, dtype=np.int64)
        ranges = split_balanced_ranges(costs, n_chunks)
        self._check_partition(ranges, len(costs))
        assert len(ranges) <= n_chunks
        csum = np.concatenate(([0], np.cumsum(costs)))
        chunk_costs = np.array([csum[hi] - csum[lo] for lo, hi in ranges])
        nz = chunk_costs[chunk_costs > 0]
        if nz.size > 1:
            assert nz.max() / nz.min() <= 1.5
