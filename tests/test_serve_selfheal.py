"""Self-healing serve layer: fault injection, respawn, quarantine, leaks.

PR 5 proved the daemon *works*; this suite proves it *recovers*.  The
contract under test: worker deaths respawn (with metrics), a poison
query is isolated by bisection and quarantined without hurting its
co-batched innocents, a timed-out request releases its admission slot
exactly once (whoever wins the cancel/resolve race), undeliverable
responses and oversized frames are answered structurally, and the
health endpoint reports it all.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import socket
import threading
import time
import types

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import random_dna
from repro.io.bank import Bank
from repro.io.m8 import format_m8
from repro.obs import MetricsRegistry
from repro.runtime import faults
from repro.runtime.errors import PoolUnhealthy
from repro.serve import (
    AdmissionController,
    BatchEngine,
    MicroBatcher,
    OrisClient,
    OrisDaemon,
    PendingQuery,
    QueryPoisoned,
    ServeConfig,
    recv_frame,
    send_frame,
)
from repro.serve import protocol as protocol_mod


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


def _single_shot(params, qname, qseq, bank2):
    qbank = Bank.from_strings([(qname, qseq)])
    return format_m8(OrisEngine(params).compare(qbank, bank2).records)


# --------------------------------------------------------------------- #
# PendingQuery resolution races
# --------------------------------------------------------------------- #


class TestPendingIdempotence:
    def test_second_resolution_loses(self):
        p = PendingQuery("q", "ACGT")
        assert p.resolve("ok", m8="x") is True
        assert p.resolve("timeout", error="late") is False
        assert p.status == "ok" and p.m8 == "x"

    def test_on_resolved_fires_exactly_once_under_race(self):
        """cancel() vs the batcher's resolve: one admission release."""
        releases = []
        batcher = MicroBatcher(
            types.SimpleNamespace(run_batch=lambda q: [""] * len(q)),
            on_resolved=lambda p: releases.append(p.name),
        )
        for _ in range(50):
            p = PendingQuery("q", "ACGT")
            barrier = threading.Barrier(2)

            def resolve_side(p=p, barrier=barrier):
                barrier.wait()
                batcher._resolve(p, "ok", m8="fine")

            def cancel_side(p=p, barrier=barrier):
                barrier.wait()
                batcher.cancel(p)

            threads = [
                threading.Thread(target=resolve_side),
                threading.Thread(target=cancel_side),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(5.0)
            assert p.done.is_set()
        assert len(releases) == 50


# --------------------------------------------------------------------- #
# Bisection + quarantine (fake engine)
# --------------------------------------------------------------------- #


class _PoisonEngine:
    """Raises whenever the batch contains a query named ``bad``."""

    def __init__(self):
        self.batches = []

    def run_batch(self, queries):
        names = [name for name, _ in queries]
        self.batches.append(names)
        if "bad" in names:
            raise RuntimeError("poison in the batch")
        return [f"{name}\thit\n" for name in names]


class TestBisection:
    def _batcher(self, engine, **kw):
        kw.setdefault("max_delay_ms", 20.0)
        kw.setdefault("registry", MetricsRegistry())
        return MicroBatcher(engine, **kw)

    def test_poison_isolated_innocents_answered(self):
        engine = _PoisonEngine()
        registry = MetricsRegistry()
        batcher = self._batcher(engine, registry=registry)
        pendings = [PendingQuery(f"q{i}", f"ACGT{'A' * i}") for i in range(7)]
        pendings.insert(3, PendingQuery("bad", "GGGGCCCC"))
        # Submit before start: everything coalesces into one batch, so
        # the failure must be isolated by bisection, not by luck.
        for p in pendings:
            batcher.submit(p)
        batcher.start()
        try:
            for p in pendings:
                assert p.wait(10.0), p.name
            for p in pendings:
                if p.name == "bad":
                    assert p.status == "poisoned"
                    assert "poison" in p.error
                else:
                    assert p.status == "ok" and p.m8 == f"{p.name}\thit\n"
            assert registry.value("serve.queries_poisoned") == 1
            assert registry.value("serve.batch_bisections") >= 1
            # Bisection is O(log n) re-runs, not O(n).
            assert len(engine.batches) < 2 * len(pendings)
        finally:
            batcher.drain(timeout=5.0)

    def test_quarantine_replays_without_engine_call(self):
        engine = _PoisonEngine()
        registry = MetricsRegistry()
        batcher = self._batcher(engine, registry=registry)
        batcher.start()
        try:
            first = PendingQuery("bad", "GGGGCCCC")
            batcher.submit(first)
            assert first.wait(10.0) and first.status == "poisoned"
            calls = len(engine.batches)
            again = PendingQuery("bad-again", "GGGGCCCC")  # same sequence
            batcher.submit(again)
            assert again.wait(5.0) and again.status == "poisoned"
            assert len(engine.batches) == calls  # answered from quarantine
            assert registry.value("serve.quarantine_hits") == 1
        finally:
            batcher.drain(timeout=5.0)

    def test_transient_failure_does_not_poison(self):
        class Flaky:
            def __init__(self):
                self.calls = 0

            def run_batch(self, queries):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient pool trouble")
                return [f"{name}\thit\n" for name, _ in queries]

        registry = MetricsRegistry()
        batcher = self._batcher(Flaky(), registry=registry)
        batcher.start()
        try:
            p = PendingQuery("q", "ACGT")
            batcher.submit(p)
            assert p.wait(10.0)
            assert p.status == "ok"  # the singleton retry rescued it
            assert registry.value("serve.queries_poisoned") == 0
        finally:
            batcher.drain(timeout=5.0)


# --------------------------------------------------------------------- #
# Admission-slot leaks: cancel path + watchdog
# --------------------------------------------------------------------- #


class TestAdmissionLeaks:
    def test_hung_batch_does_not_shed_forever(self):
        """Regression: a wedged batch used to leak its admission slots.

        The daemon's give-up path now cancels, so in_flight returns to
        zero and later queries are admitted -- shedding stays bounded
        instead of hitting 100%.
        """
        registry = MetricsRegistry()
        admission = AdmissionController(
            max_queue=2, registry=registry, check_memory=False
        )
        wedge = threading.Event()

        class Wedged:
            def run_batch(self, queries):
                wedge.wait(30.0)
                return [f"{name}\thit\n" for name, _ in queries]

        batcher = MicroBatcher(
            Wedged(),
            max_delay_ms=0.0,
            registry=registry,
            on_resolved=lambda _p: admission.release(),
        )
        batcher.start()
        try:
            stuck = []
            for i in range(2):
                assert admission.try_admit(4).admitted
                p = PendingQuery(f"q{i}", "ACGT")
                batcher.submit(p)
                stuck.append(p)
            time.sleep(0.1)  # let the batch wedge inside run_batch
            assert admission.in_flight == 2
            assert not admission.try_admit(4).admitted  # full: shed
            # The daemon's _handle_query give-up path:
            for p in stuck:
                batcher.cancel(p)
            assert admission.in_flight == 0
            assert admission.try_admit(4).admitted  # healthy again
            admission.release()
            shed_before = registry.value("serve.requests_shed")
            wedge.set()  # the batch finally completes...
            time.sleep(0.2)
            # ...and its late resolutions must NOT double-release.
            assert admission.in_flight == 0
            assert registry.value("serve.requests_shed") == shed_before
        finally:
            wedge.set()
            batcher.drain(timeout=5.0)

    def test_watchdog_repairs_leaked_slots(self, selfheal_daemon):
        daemon = selfheal_daemon
        # Simulate a leak no code path should produce: slots held with
        # nothing pending anywhere.
        daemon.admission._in_flight = 3
        for _ in range(2):
            daemon._watchdog_check()
        assert daemon.admission.in_flight == 3  # hysteresis: not yet
        daemon._watchdog_check()  # third strike
        assert daemon.admission.in_flight == 0
        assert daemon.registry.value("serve.admission_slots_repaired") == 3

    def test_watchdog_tolerates_legitimate_in_flight(
        self, selfheal_daemon, monkeypatch
    ):
        daemon = selfheal_daemon
        daemon.admission._in_flight = 1
        monkeypatch.setattr(daemon.batcher, "unresolved_count", lambda: 1)
        try:
            for _ in range(5):
                daemon._watchdog_check()
            assert daemon.admission.in_flight == 1  # matched: no repair
        finally:
            daemon.admission._in_flight = 0


# --------------------------------------------------------------------- #
# Undeliverable responses and oversized frames
# --------------------------------------------------------------------- #


class TestTrySend:
    def _daemon_self(self):
        return types.SimpleNamespace(registry=MetricsRegistry())

    def test_vanished_client_counted(self):
        fake = self._daemon_self()
        a, b = socket.socketpair()
        b.close()
        try:
            # Two sends: the first may land in the buffer before the
            # reset is observed, the second must fail.
            ok = OrisDaemon._try_send(fake, a, {"status": "ok"})
            ok = ok and OrisDaemon._try_send(fake, a, {"status": "ok"})
            assert not ok
            assert fake.registry.value("serve.responses_undeliverable") == 1
        finally:
            a.close()

    def test_delivered_response_not_counted(self):
        fake = self._daemon_self()
        a, b = socket.socketpair()
        try:
            assert OrisDaemon._try_send(fake, a, {"status": "ok"})
            assert recv_frame(b) == {"status": "ok"}
            assert fake.registry.value("serve.responses_undeliverable") == 0
        finally:
            a.close()
            b.close()

    def test_oversized_response_downgraded(self, monkeypatch):
        monkeypatch.setattr(protocol_mod, "MAX_FRAME_BYTES", 128)
        fake = self._daemon_self()
        a, b = socket.socketpair()
        b.settimeout(5.0)
        try:
            assert OrisDaemon._try_send(fake, a, {"m8": "x" * 4096})
            reply = recv_frame(b)
            assert reply["status"] == "error"
            assert "too large" in reply["error"]
        finally:
            a.close()
            b.close()


class TestFrameCapBothDirections:
    def test_recv_refuses_oversized_announcement(self):
        a, b = socket.socketpair()
        b.settimeout(5.0)
        try:
            a.sendall((protocol_mod.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(protocol_mod.ProtocolError, match="frame too large"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_send_refuses_oversized_body(self, monkeypatch):
        monkeypatch.setattr(protocol_mod, "MAX_FRAME_BYTES", 64)
        a, b = socket.socketpair()
        try:
            with pytest.raises(protocol_mod.ProtocolError, match="exceeds"):
                send_frame(a, {"m8": "x" * 1024})
        finally:
            a.close()
            b.close()

    def test_daemon_diagnoses_oversized_frame(self, selfheal_daemon):
        """A client announcing a too-large frame gets a structured error
        frame back, not an ECONNRESET."""
        host, port = selfheal_daemon.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall((protocol_mod.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            reply = recv_frame(sock)
            assert reply is not None and reply["status"] == "error"
            assert "frame too large" in reply["error"]


# --------------------------------------------------------------------- #
# Batcher deadline-expiry and submit/drain interleavings
# --------------------------------------------------------------------- #


class _EchoEngine:
    def __init__(self):
        self.batches = []

    def run_batch(self, queries):
        self.batches.append([name for name, _ in queries])
        return [f"{name}\thit\n" for name, _ in queries]


class TestBatcherRaces:
    def test_deadline_expiry_while_filling(self):
        """A query whose deadline passes during FILLING is resolved
        ``timeout`` and never reaches the engine; its co-batched peers
        are unaffected."""
        engine = _EchoEngine()
        batcher = MicroBatcher(engine, max_delay_ms=150.0)
        batcher.start()
        try:
            expired = PendingQuery(
                "expired", "ACGT", deadline=time.monotonic() + 0.02
            )
            live = PendingQuery("live", "ACGT")
            batcher.submit(expired)
            batcher.submit(live)
            assert expired.wait(5.0) and expired.status == "timeout"
            assert live.wait(5.0) and live.status == "ok"
            assert all("expired" not in b for b in engine.batches)
        finally:
            batcher.drain(timeout=5.0)

    def test_try_admit_start_draining_race(self):
        """A query admitted a moment before draining still resolves (as
        ``draining``) and still releases its slot."""
        registry = MetricsRegistry()
        admission = AdmissionController(
            max_queue=8, registry=registry, check_memory=False
        )
        batcher = MicroBatcher(
            _EchoEngine(),
            max_delay_ms=500.0,  # keep the batch FILLING during the race
            registry=registry,
            on_resolved=lambda _p: admission.release(),
        )
        batcher.start()
        assert admission.try_admit(4).admitted
        p = PendingQuery("q", "ACGT")
        admission.start_draining()  # drain flag flips between admit and submit
        batcher.submit(p)
        batcher.drain(timeout=5.0)
        assert p.wait(5.0)
        assert p.status in ("draining", "ok")
        assert admission.in_flight == 0

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n_queries=st.integers(0, 6),
        drain_after=st.integers(0, 6),
        expired_mask=st.integers(0, 63),
    )
    def test_interleaving_sweep_resolves_everything(
        self, n_queries, drain_after, expired_mask
    ):
        """Whatever the submit/drain interleaving, every admitted query
        resolves and every admission slot is released."""
        registry = MetricsRegistry()
        admission = AdmissionController(
            max_queue=16, registry=registry, check_memory=False
        )
        batcher = MicroBatcher(
            _EchoEngine(),
            max_delay_ms=1.0,
            registry=registry,
            on_resolved=lambda _p: admission.release(),
        )
        batcher.start()
        pendings = []
        for i in range(n_queries):
            if i == drain_after:
                batcher.drain(timeout=5.0)
            assert admission.try_admit(4).admitted
            deadline = (
                time.monotonic() - 1.0 if expired_mask & (1 << i) else None
            )
            p = PendingQuery(f"q{i}", "ACGT", deadline=deadline)
            batcher.submit(p)
            pendings.append(p)
        batcher.drain(timeout=5.0)
        for p in pendings:
            assert p.wait(5.0), p.name
            assert p.status in ("ok", "timeout", "draining")
        assert admission.in_flight == 0


# --------------------------------------------------------------------- #
# Real worker pool: respawn, replacement, hang recovery
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def selfheal_corpus():
    rng = np.random.default_rng(20260807)
    subjects = [random_dna(rng, 500) for _ in range(3)]
    bank2 = Bank.from_strings([(f"s{i}", x) for i, x in enumerate(subjects)])
    queries = [
        ("q0", subjects[0][50:250]),
        ("q1", subjects[1][100:300]),
    ]
    return bank2, queries


class TestPoolSelfHealing:
    def test_killed_worker_respawned_with_metrics(self, selfheal_corpus):
        bank2, queries = selfheal_corpus
        engine = BatchEngine(bank2, OrisParams(), n_workers=2)
        try:
            before = engine.run_batch(queries)
            victim = engine.pool._workers[0]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(5.0)
            after = engine.run_batch(queries)
            assert after == before
            assert engine.pool.respawns >= 1
            assert engine.registry.value("pool.respawns") >= 1
            health = engine.pool.health()
            assert health["ok"] and health["alive"] == 2
        finally:
            engine.close()

    def test_crash_storm_replaces_pool_then_recovers(self, selfheal_corpus):
        """worker.crash at p=1.0 trips PoolUnhealthy; the engine swaps
        the pool and, once the fault clears, the next batch succeeds."""
        bank2, queries = selfheal_corpus
        faults.arm("worker.crash:1:0")
        engine = BatchEngine(bank2, OrisParams(), n_workers=2)
        # One failure is enough evidence for this test; the default
        # budget (2n+2) would just take longer to trip.
        engine.config = dataclasses.replace(engine.config, max_pool_failures=0)
        try:
            with pytest.raises(PoolUnhealthy):
                engine.run_batch(queries)
            assert engine.pool.replacements == 1
            assert engine.registry.value("pool.replacements") == 1
            faults.disarm()  # replacement workers fork disarmed state
            healed = engine.run_batch(queries)
            for (name, seq), got in zip(queries, healed):
                assert got == _single_shot(OrisParams(), name, seq, bank2)
        finally:
            engine.close()

    def test_hung_worker_recovers_via_task_timeout(self, selfheal_corpus):
        """worker.hang wedges the first task of each worker; the per-task
        deadline kills and requeues until the in-parent quarantine
        answers -- the batch still returns correct results."""
        bank2, queries = selfheal_corpus
        faults.arm("worker.hang:1:0")
        engine = BatchEngine(
            bank2,
            OrisParams(),
            n_workers=2,
            tasks_per_worker=1,
            task_timeout=0.3,
        )
        # Two tasks x (max_retries + 1) timeouts lands exactly on the
        # default budget; raise it so this test exercises the timeout ->
        # quarantine path, not PoolUnhealthy.
        engine.config = dataclasses.replace(engine.config, max_pool_failures=50)
        try:
            out = engine.run_batch(queries)
            for (name, seq), got in zip(queries, out):
                assert got == _single_shot(OrisParams(), name, seq, bank2)
            assert engine.registry.value("scheduler.timeouts") >= 1
        finally:
            engine.close()


# --------------------------------------------------------------------- #
# Daemon end-to-end: poison via fault point, health, client retries
# --------------------------------------------------------------------- #


@pytest.fixture
def selfheal_daemon(est_pair):
    d = OrisDaemon(
        est_pair[1],
        OrisParams(),
        ServeConfig(n_workers=1, check_memory=False, max_delay_ms=10.0),
    )
    d.start()
    yield d
    d.shutdown()


class TestDaemonSelfHeal:
    def _query_text(self, est_pair, i=0):
        bank1 = est_pair[0]
        lo, hi = bank1.bounds(i)
        return bank1.names[i], "".join(
            "ACGT"[c] if c < 4 else "N" for c in bank1.seq[lo:hi]
        )

    def test_health_reports_components(self, selfheal_daemon):
        host, port = selfheal_daemon.address
        with OrisClient(host, port) as client:
            health = client.health()
        assert health["healthy"] is True
        components = health["components"]
        assert set(components) >= {"pool", "arena", "batcher", "admission"}
        assert all(c["ok"] for c in components.values())
        assert components["admission"]["in_flight"] == 0
        assert components["batcher"]["quarantined"] == 0

    def test_poison_query_fault_point_end_to_end(
        self, selfheal_daemon, est_pair
    ):
        """serve.poison_query poisons the marked query, innocents answer
        byte-identically, and the daemon stays healthy."""
        faults.arm("serve.poison_query:1:0:POISONQ")
        host, port = selfheal_daemon.address
        name, seq = self._query_text(est_pair)
        results = {}
        errors = {}

        def go(qname, qseq):
            try:
                with OrisClient(host, port) as client:
                    results[qname] = client.query(qname, qseq)
            except Exception as exc:  # noqa: BLE001 - asserted below
                errors[qname] = exc

        jobs = [(name, seq), ("POISONQ_bad", seq), ("innocent", seq)]
        threads = [threading.Thread(target=go, args=j) for j in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert isinstance(errors.pop("POISONQ_bad", None), QueryPoisoned)
        assert not errors
        expected = _single_shot(OrisParams(), name, seq, est_pair[1])
        assert results[name] == expected
        with OrisClient(host, port) as client:
            health = client.health()
        assert health["healthy"] is True
        assert health["components"]["batcher"]["quarantined"] >= 1
        assert selfheal_daemon.admission.in_flight == 0

    def test_client_retries_shed_with_hint(self, selfheal_daemon, est_pair):
        """A shed response with retry_after_ms is retried and succeeds
        once the slot frees."""
        daemon = selfheal_daemon
        daemon.admission.max_queue = 1
        daemon.admission._in_flight = 1  # wedge the only slot
        host, port = daemon.address
        name, seq = self._query_text(est_pair)

        def free_slot():
            time.sleep(0.15)
            daemon.admission._in_flight = 0

        try:
            freer = threading.Thread(target=free_slot)
            freer.start()
            with OrisClient(host, port, retries=5) as client:
                got = client.query(name, seq)
            freer.join(5.0)
            assert got == _single_shot(OrisParams(), name, seq, est_pair[1])
            assert client.retries_used >= 1
        finally:
            daemon.admission.max_queue = 64
            daemon.admission._in_flight = 0

    def test_client_reconnects_after_reset(self, selfheal_daemon, est_pair):
        host, port = selfheal_daemon.address
        name, seq = self._query_text(est_pair)
        client = OrisClient(host, port, retries=3)
        try:
            client.connect()
            # Wreck the socket but leave it attached: the next send hits
            # EBADF, and the retry path must reconnect transparently.
            client._sock.close()
            assert client.query(name, seq) == _single_shot(
                OrisParams(), name, seq, est_pair[1]
            )
            assert client.retries_used >= 1
        finally:
            client.close()

    def test_client_never_retries_draining(self, selfheal_daemon, est_pair):
        from repro.serve import ServerDraining

        daemon = selfheal_daemon
        daemon.admission.start_draining()
        host, port = daemon.address
        name, seq = self._query_text(est_pair)
        with OrisClient(host, port, retries=3) as client:
            with pytest.raises(ServerDraining):
                client.query(name, seq)
            assert client.retries_used == 0
