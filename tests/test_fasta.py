"""Tests for the FASTA reader/writer (repro.io.fasta)."""

import gzip
import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.fasta import (
    FastaError,
    FastaRecord,
    format_fasta,
    iter_fasta,
    iter_fasta_tolerant,
    read_fasta,
    write_fasta,
)

SIMPLE = ">seq1 a description\nACGT\nACGT\n>seq2\nTTTT\n"


class TestParsing:
    def test_basic(self):
        recs = read_fasta(io.StringIO(SIMPLE))
        assert recs == [("seq1", "ACGTACGT"), ("seq2", "TTTT")]

    def test_name_is_first_token(self):
        (rec,) = read_fasta(io.StringIO(">id descr more\nAC\n"))
        assert rec.name == "id"

    def test_named_access(self):
        (rec,) = read_fasta(io.StringIO(">x\nAC\n"))
        assert rec.sequence == "AC"
        assert isinstance(rec, FastaRecord)

    def test_windows_line_endings(self):
        recs = read_fasta(io.StringIO(">a\r\nAC\r\nGT\r\n"))
        assert recs == [("a", "ACGT")]

    def test_blank_lines_skipped(self):
        recs = read_fasta(io.StringIO("\n>a\n\nAC\n\nGT\n\n"))
        assert recs == [("a", "ACGT")]

    def test_semicolon_comments_skipped(self):
        recs = read_fasta(io.StringIO("; comment\n>a\nAC\n; mid\nGT\n"))
        assert recs == [("a", "ACGT")]

    def test_empty_input(self):
        assert read_fasta(io.StringIO("")) == []

    def test_record_without_sequence(self):
        recs = read_fasta(io.StringIO(">a\n>b\nAC\n"))
        assert recs == [("a", ""), ("b", "AC")]

    def test_data_before_header_raises(self):
        with pytest.raises(FastaError, match="before first"):
            read_fasta(io.StringIO("ACGT\n"))

    def test_empty_header_raises(self):
        with pytest.raises(FastaError, match="empty"):
            read_fasta(io.StringIO(">\nAC\n"))

    def test_streaming_is_lazy(self):
        it = iter_fasta(io.StringIO(SIMPLE))
        assert next(it).name == "seq1"

    def test_type_error_on_bad_source(self):
        with pytest.raises(TypeError):
            read_fasta(12345)


class TestEdgeCases:
    """Byte-level oddities every real-world FASTA eventually exhibits.

    The canonical form ``>a\\nACGT\\nACGT\\n`` and each variant below must
    parse to the *same* records.
    """

    CANONICAL = [("a", "ACGTACGT")]

    def parse_bytes(self, payload: bytes):
        return [tuple(r) for r in read_fasta(io.BytesIO(payload))]

    def test_final_record_without_trailing_newline(self):
        assert self.parse_bytes(b">a\nACGT\nACGT") == self.CANONICAL

    def test_crlf_line_endings(self):
        assert self.parse_bytes(b">a\r\nACGT\r\nACGT\r\n") == self.CANONICAL

    def test_crlf_without_trailing_newline(self):
        assert self.parse_bytes(b">a\r\nACGT\r\nACGT") == self.CANONICAL

    def test_blank_lines_inside_record(self):
        assert self.parse_bytes(b"\n>a\n\nACGT\n\n\nACGT\n\n") == self.CANONICAL

    def test_internal_whitespace_in_sequence_lines(self):
        assert self.parse_bytes(b">a\nAC GT\nAC\tGT\n") == self.CANONICAL

    def test_utf8_bom(self):
        assert self.parse_bytes(b"\xef\xbb\xbf>a\nACGT\nACGT\n") == self.CANONICAL

    def test_gzip_file_transparently_decompressed(self, tmp_path):
        path = tmp_path / "x.fa.gz"
        path.write_bytes(gzip.compress(b">a\nACGT\nACGT\n"))
        assert [tuple(r) for r in read_fasta(path)] == self.CANONICAL

    def test_gzip_with_crlf_and_no_trailing_newline(self, tmp_path):
        path = tmp_path / "x.fa.gz"
        path.write_bytes(gzip.compress(b">a\r\nACGT\r\nACGT"))
        assert [tuple(r) for r in read_fasta(path)] == self.CANONICAL

    def test_plain_file_with_gz_suffix(self, tmp_path):
        # Sniffing goes by magic bytes, not the file name.
        path = tmp_path / "notreally.fa.gz"
        path.write_bytes(b">a\nACGT\nACGT\n")
        assert [tuple(r) for r in read_fasta(path)] == self.CANONICAL

    def test_error_carries_line_number(self):
        with pytest.raises(FastaError) as exc_info:
            read_fasta(io.StringIO(">ok\nACGT\nstray\n>\nACGT\n"))
        assert exc_info.value.lineno == 4
        assert exc_info.value.code == "empty-header"


class TestTolerantIterator:
    def test_problems_reported_not_raised(self):
        seen = []

        def on_problem(lineno, code, message):
            seen.append((lineno, code))
            return True

        records = list(
            iter_fasta_tolerant(
                io.StringIO("junk\n>a\nACGT\n>\norphan\n>b\nTT\n"), on_problem
            )
        )
        assert [(r.name, r.sequence) for r, _ in records] == [
            ("a", "ACGT"), ("b", "TT"),
        ]
        # line 1: leading junk; line 4: empty header; line 5: the orphaned
        # sequence line following the skipped empty-header record.
        assert seen == [
            (1, "data-before-header"),
            (4, "empty-header"),
            (5, "data-before-header"),
        ]

    def test_header_linenos_reported(self):
        records = list(
            iter_fasta_tolerant(
                io.StringIO("\n>a\nACGT\n>b\nTT\n"), lambda *a: True
            )
        )
        assert [lineno for _, lineno in records] == [2, 4]

    def test_callback_can_abort(self):
        def on_problem(lineno, code, message):
            raise FastaError(message, lineno=lineno, code=code)

        with pytest.raises(FastaError):
            list(iter_fasta_tolerant(io.StringIO("junk\n"), on_problem))


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "x.fa"
        records = [("a", "ACGT" * 50), ("b", "TT")]
        write_fasta(path, records)
        assert [tuple(r) for r in read_fasta(path)] == records

    def test_wrapping(self):
        text = format_fasta([("a", "ACGTACGT")], width=4)
        assert text == ">a\nACGT\nACGT\n"

    def test_no_wrapping(self):
        text = format_fasta([("a", "ACGTACGT")], width=0)
        assert text == ">a\nACGTACGT\n"

    names = st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters=">;"),
        min_size=1,
        max_size=12,
    ).filter(lambda s: not s.startswith(";"))

    @given(
        st.lists(
            st.tuples(names, st.text(alphabet="ACGTN", min_size=1, max_size=100)),
            min_size=1,
            max_size=6,
        )
    )
    def test_round_trip_property(self, records):
        text = format_fasta(records, width=13)
        parsed = read_fasta(io.StringIO(text))
        assert [tuple(r) for r in parsed] == [
            (n.split()[0], s) for n, s in records
        ]
