"""Tests for the FASTA reader/writer (repro.io.fasta)."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.fasta import (
    FastaError,
    FastaRecord,
    format_fasta,
    iter_fasta,
    read_fasta,
    write_fasta,
)

SIMPLE = ">seq1 a description\nACGT\nACGT\n>seq2\nTTTT\n"


class TestParsing:
    def test_basic(self):
        recs = read_fasta(io.StringIO(SIMPLE))
        assert recs == [("seq1", "ACGTACGT"), ("seq2", "TTTT")]

    def test_name_is_first_token(self):
        (rec,) = read_fasta(io.StringIO(">id descr more\nAC\n"))
        assert rec.name == "id"

    def test_named_access(self):
        (rec,) = read_fasta(io.StringIO(">x\nAC\n"))
        assert rec.sequence == "AC"
        assert isinstance(rec, FastaRecord)

    def test_windows_line_endings(self):
        recs = read_fasta(io.StringIO(">a\r\nAC\r\nGT\r\n"))
        assert recs == [("a", "ACGT")]

    def test_blank_lines_skipped(self):
        recs = read_fasta(io.StringIO("\n>a\n\nAC\n\nGT\n\n"))
        assert recs == [("a", "ACGT")]

    def test_semicolon_comments_skipped(self):
        recs = read_fasta(io.StringIO("; comment\n>a\nAC\n; mid\nGT\n"))
        assert recs == [("a", "ACGT")]

    def test_empty_input(self):
        assert read_fasta(io.StringIO("")) == []

    def test_record_without_sequence(self):
        recs = read_fasta(io.StringIO(">a\n>b\nAC\n"))
        assert recs == [("a", ""), ("b", "AC")]

    def test_data_before_header_raises(self):
        with pytest.raises(FastaError, match="before first"):
            read_fasta(io.StringIO("ACGT\n"))

    def test_empty_header_raises(self):
        with pytest.raises(FastaError, match="empty"):
            read_fasta(io.StringIO(">\nAC\n"))

    def test_streaming_is_lazy(self):
        it = iter_fasta(io.StringIO(SIMPLE))
        assert next(it).name == "seq1"

    def test_type_error_on_bad_source(self):
        with pytest.raises(TypeError):
            read_fasta(12345)


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "x.fa"
        records = [("a", "ACGT" * 50), ("b", "TT")]
        write_fasta(path, records)
        assert [tuple(r) for r in read_fasta(path)] == records

    def test_wrapping(self):
        text = format_fasta([("a", "ACGTACGT")], width=4)
        assert text == ">a\nACGT\nACGT\n"

    def test_no_wrapping(self):
        text = format_fasta([("a", "ACGTACGT")], width=0)
        assert text == ">a\nACGTACGT\n"

    names = st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters=">;"),
        min_size=1,
        max_size=12,
    ).filter(lambda s: not s.startswith(";"))

    @given(
        st.lists(
            st.tuples(names, st.text(alphabet="ACGTN", min_size=1, max_size=100)),
            min_size=1,
            max_size=6,
        )
    )
    def test_round_trip_property(self, records):
        text = format_fasta(records, width=13)
        parsed = read_fasta(io.StringIO(text))
        assert [tuple(r) for r in parsed] == [
            (n.split()[0], s) for n, s in records
        ]
