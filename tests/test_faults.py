"""Tests for the deterministic fault-injection registry (repro.runtime.faults).

The registry's contract has three load-bearing parts: spec parsing is
strict (a typo must not silently arm nothing), firing decisions are
*pure functions* of (seed, call ordinal) so chaos runs replay exactly,
and the disarmed hot path costs nothing observable.
"""

from __future__ import annotations

import pytest

from repro.runtime import faults


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no armed faults in-process."""
    faults.disarm()
    yield
    faults.disarm()


class TestSpecParsing:
    def test_unknown_point_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="unknown fault point"):
            faults.arm("worker.crsh:0.5:1")

    def test_malformed_spec_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="bad fault spec"):
            faults.arm("worker.crash")
        with pytest.raises(faults.FaultSpecError, match="bad fault spec"):
            faults.arm("worker.crash:half:1")

    def test_probability_bounds(self):
        with pytest.raises(faults.FaultSpecError, match="probability"):
            faults.arm("worker.crash:1.5:1")
        with pytest.raises(faults.FaultSpecError, match="probability"):
            faults.arm("worker.crash:-0.1:1")

    def test_comma_separated_specs(self):
        faults.arm("worker.crash:0.5:1,serve.torn_frame:0.25:2")
        assert faults.armed()
        assert set(faults.fired_counts()) == {"worker.crash", "serve.torn_frame"}

    def test_empty_spec_is_disarmed(self):
        faults.arm("")
        assert not faults.armed()

    def test_match_token_parses(self):
        faults.arm("serve.poison_query:1:0:POISON")
        assert faults.armed()


class TestFiring:
    def test_disarmed_never_fires(self):
        assert not faults.should_fire("worker.crash")
        assert faults.fired_counts() == {}

    def test_unarmed_point_never_fires_while_others_armed(self):
        faults.arm("worker.hang:1:0")
        assert not faults.should_fire("worker.crash")

    def test_probability_one_always_fires(self):
        faults.arm("worker.crash:1:0")
        assert all(faults.should_fire("worker.crash") for _ in range(20))
        assert faults.fired_counts()["worker.crash"] == 20

    def test_probability_zero_never_fires(self):
        faults.arm("worker.crash:0:0")
        assert not any(faults.should_fire("worker.crash") for _ in range(20))

    def test_deterministic_replay(self):
        """The same spec produces the same fire/no-fire sequence."""
        faults.arm("worker.crash:0.3:1234")
        first = [faults.should_fire("worker.crash") for _ in range(200)]
        faults.arm("worker.crash:0.3:1234")
        second = [faults.should_fire("worker.crash") for _ in range(200)]
        assert first == second
        assert any(first) and not all(first)  # p=0.3 is neither extreme

    def test_seed_changes_the_sequence(self):
        faults.arm("worker.crash:0.3:1")
        a = [faults.should_fire("worker.crash") for _ in range(200)]
        faults.arm("worker.crash:0.3:2")
        b = [faults.should_fire("worker.crash") for _ in range(200)]
        assert a != b

    def test_empirical_rate_tracks_probability(self):
        faults.arm("worker.crash:0.2:99")
        fired = sum(faults.should_fire("worker.crash") for _ in range(2000))
        assert 250 < fired < 550  # ~400 expected; loose deterministic bounds

    def test_match_token_restricts_firing(self):
        faults.arm("serve.poison_query:1:0:POISON")
        assert not faults.should_fire("serve.poison_query", "q1")
        assert not faults.should_fire("serve.poison_query")  # no key at all
        assert faults.should_fire("serve.poison_query", "POISON_q7")
        assert faults.fired_counts()["serve.poison_query"] == 1


class TestEnvArming:
    def test_lazy_env_arming(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker.hang:1:0")
        faults.reset()  # forget state; next check consults the env
        assert faults.armed()
        assert faults.should_fire("worker.hang")

    def test_env_ignored_after_explicit_arm(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker.hang:1:0")
        faults.arm("worker.crash:1:0")
        assert not faults.should_fire("worker.hang")
        assert faults.should_fire("worker.crash")

    def test_no_env_stays_disarmed(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.reset()
        assert not faults.armed()


class TestInject:
    def test_inject_rejects_parent_side_points(self):
        with pytest.raises(ValueError, match="worker-side"):
            faults.inject("serve.torn_frame")

    def test_hang_sleeps_patched_duration(self, monkeypatch):
        monkeypatch.setattr(faults, "HANG_SECONDS", 0.01)
        import time

        t0 = time.monotonic()
        faults.inject("worker.hang")
        assert time.monotonic() - t0 >= 0.01
