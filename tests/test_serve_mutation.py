"""Tests for zero-downtime bank mutation in the serve layer.

The contract: a daemon started with a segment store accepts
``add_sequences`` / ``remove_sequences`` / ``reindex`` while queries are
in flight; queries admitted before a swap finish against the old
subject, queries batched after it see the new one, and **no query is
ever refused or answered wrongly because a mutation happened**.  Every
answer remains byte-identical to a single-shot ``compare`` against
whichever subject generation served it.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import OrisEngine, OrisParams
from repro.data.synthetic import random_dna
from repro.index import SegmentStore
from repro.io.bank import Bank
from repro.io.m8 import format_m8
from repro.serve import OrisClient, OrisDaemon, ServeConfig
from repro.serve.client import QueryFailed
from repro.serve.engine import BatchEngine


W_PARAMS = OrisParams()


def _single_shot(name: str, seq: str, bank2: Bank) -> str:
    result = OrisEngine(W_PARAMS).compare(Bank.from_strings([(name, seq)]), bank2)
    return format_m8(result.records)


def _subjects(rng, n=6):
    return {f"sub{i}": random_dna(rng, int(rng.integers(300, 800))) for i in range(n)}


def _queries_for(rng, subjects, n=4):
    out = []
    seqs = list(subjects.values())
    for i in range(n):
        src = seqs[int(rng.integers(0, len(seqs)))]
        a = int(rng.integers(0, len(src) - 150))
        out.append((f"q{i}", src[a : a + 150]))
    return out


@pytest.fixture
def store(tmp_path, rng):
    subjects = _subjects(rng)
    s = SegmentStore.create(tmp_path / "store", w=W_PARAMS.w, filter_kind="dust")
    s.add_many(list(subjects.items()))
    s.flush()
    yield s, subjects


class TestEngineMutation:
    def test_requires_exactly_one_subject_source(self, store):
        s, subjects = store
        bank = Bank.from_strings(list(subjects.items()))
        with pytest.raises(ValueError, match="exactly one subject source"):
            BatchEngine(bank, W_PARAMS, store=s)
        with pytest.raises(ValueError, match="exactly one subject source"):
            BatchEngine(params=W_PARAMS)

    def test_mutations_match_single_shot(self, store, rng):
        s, subjects = store
        queries = _queries_for(rng, subjects)
        engine = BatchEngine(params=W_PARAMS, store=s, n_workers=1)
        try:
            def check():
                bank, _ = s.merged()
                for (name, seq), m8 in zip(queries, engine.run_batch(queries)):
                    assert m8 == _single_shot(name, seq, bank)

            check()
            extra = {f"new{i}": random_dna(rng, 400) for i in range(2)}
            report = engine.add_sequences(list(extra.items()))
            assert report["n_sequences"] == len(subjects) + 2
            check()
            engine.remove_sequences(["sub0"])
            check()
            report = engine.reindex()
            assert report["store"]["segments"] == 1
            assert report["store"]["tombstones"] == 0
            check()
        finally:
            engine.close()

    def test_remove_everything_refused(self, store):
        s, _subjects_ = store
        engine = BatchEngine(params=W_PARAMS, store=s, n_workers=1)
        try:
            with pytest.raises(ValueError, match="every sequence"):
                engine.remove_sequences(s.names())
        finally:
            engine.close()

    def test_static_engine_refuses_mutation(self, rng):
        bank = Bank.from_strings([("s", random_dna(rng, 300))])
        engine = BatchEngine(bank, W_PARAMS, n_workers=1)
        try:
            with pytest.raises(ValueError, match="--store"):
                engine.add_sequences([("x", "ACGT" * 20)])
        finally:
            engine.close()

    def test_auto_flush_and_compact_policy(self, store, rng):
        s, _subjects_ = store
        # Tiny thresholds: every add flushes, and the second add compacts.
        engine = BatchEngine(
            params=W_PARAMS, store=s, n_workers=1,
            store_flush_nt=1, store_max_segments=1,
        )
        try:
            engine.add_sequences([("f1", random_dna(rng, 100))])
            engine.add_sequences([("f2", random_dna(rng, 100))])
            assert s.n_delta == 0  # flushed
            assert s.n_segments == 1  # compacted back down
            assert s.manifest.compactions >= 1
        finally:
            engine.close()

    def test_swap_retires_old_arena(self, store, rng):
        s, subjects = store
        queries = _queries_for(rng, subjects, n=2)
        engine = BatchEngine(params=W_PARAMS, store=s, n_workers=2)
        try:
            if not engine._use_shm:
                pytest.skip("shared memory unavailable in this environment")
            first_block = engine._subject.arena.spec.block
            engine.run_batch(queries)
            engine.add_sequences([("late", random_dna(rng, 300))])
            assert engine._subject.arena.spec.block != first_block
            assert len(engine._retired) == 1  # old arena awaits the batcher
            engine.run_batch(queries)  # batcher turn: reap happens here
            assert engine._retired == []
            assert engine.registry.value("serve.subject_arenas_reaped") == 1
        finally:
            engine.close()


class TestDaemonMutation:
    @pytest.fixture
    def daemon(self, store):
        s, subjects = store
        d = OrisDaemon(
            params=W_PARAMS,
            config=ServeConfig(
                n_workers=1, check_memory=False, max_delay_ms=5.0
            ),
            store=s,
        )
        d.start()
        yield d, subjects
        d.shutdown()

    def test_admin_ops_via_client(self, daemon, rng):
        d, subjects = daemon
        host, port = d.address
        added = {f"fresh{i}": random_dna(rng, 350) for i in range(2)}
        with OrisClient(host, port) as client:
            report = client.add_sequences(list(added.items()))
            assert report["n_sequences"] == len(subjects) + 2
            # a planted query against a *newly added* sequence must hit
            name, seq = next(iter(added.items()))
            bank, _ = d.engine.store.merged()
            assert client.query("probe", seq[40:190]) == _single_shot(
                "probe", seq[40:190], bank
            )
            report = client.remove_sequences(["fresh0"])
            assert report["n_sequences"] == len(subjects) + 1
            report = client.reindex()
            assert report["store"]["segments"] == 1
            health = client.health()
            assert health["healthy"] is True
            assert health["components"]["store"]["ok"] is True
            assert health["components"]["store"]["segments"] == 1

    def test_admin_validation_errors(self, daemon):
        d, _subjects_ = daemon
        host, port = d.address
        with OrisClient(host, port) as client:
            with pytest.raises(QueryFailed, match="already exists"):
                client.add_sequences([("sub0", "ACGT" * 30)])
            with pytest.raises(QueryFailed, match="no sequence named"):
                client.remove_sequences(["ghost"])
            with pytest.raises(QueryFailed, match="records"):
                client._admin({"type": "add_sequences", "records": []})

    def test_static_daemon_refuses_admin(self, rng):
        bank = Bank.from_strings([("s", random_dna(rng, 300))])
        d = OrisDaemon(
            bank,
            W_PARAMS,
            ServeConfig(n_workers=1, check_memory=False, max_delay_ms=5.0),
        )
        d.start()
        try:
            host, port = d.address
            with OrisClient(host, port) as client:
                with pytest.raises(QueryFailed, match="--store"):
                    client.reindex()
        finally:
            d.shutdown()

    def test_zero_downtime_swap_under_concurrent_queries(self, daemon, rng):
        """Mutations mid-stream: every query answered, none refused,
        every answer byte-identical to one of the subject generations it
        could legitimately have seen."""
        d, subjects = daemon
        host, port = d.address
        query_rng = np.random.default_rng(99)
        jobs = _queries_for(query_rng, subjects, n=3)
        # Answers must match the subject bank *some* generation served;
        # collect the logical bank before and after each mutation.
        generations = [d.engine.store.merged()[0]]
        errors: list = []
        results: dict[str, list[str]] = {name: [] for name, _ in jobs}
        stop = threading.Event()

        def hammer(name, seq):
            try:
                with OrisClient(host, port) as client:
                    while not stop.is_set():
                        results[name].append(client.query(name, seq))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, exc))

        threads = [threading.Thread(target=hammer, args=j) for j in jobs]
        for t in threads:
            t.start()
        try:
            with OrisClient(host, port) as admin:
                admin.add_sequences([("mut0", random_dna(rng, 400))])
                generations.append(d.engine.store.merged()[0])
                admin.remove_sequences(["sub1"])
                generations.append(d.engine.store.merged()[0])
                admin.reindex()
        finally:
            stop.set()
            for t in threads:
                t.join(30.0)
        assert not errors  # zero refused / failed queries during swaps
        acceptable: dict[str, set[str]] = {}
        for name, seq in jobs:
            acceptable[name] = {
                _single_shot(name, seq, bank) for bank in generations
            }
        for name, _seq in jobs:
            assert results[name]  # the hammer really ran
            for answer in results[name]:
                assert answer in acceptable[name]

    def test_store_survives_daemon_restart(self, tmp_path, rng):
        subjects = _subjects(rng, n=4)
        directory = tmp_path / "restart-store"
        s = SegmentStore.create(directory, w=W_PARAMS.w, filter_kind="dust")
        s.add_many(list(subjects.items()))
        config = ServeConfig(n_workers=1, check_memory=False, max_delay_ms=5.0)
        d = OrisDaemon(params=W_PARAMS, config=config, store=s)
        d.start()
        host, port = d.address
        with OrisClient(host, port) as client:
            client.add_sequences([("durable", random_dna(rng, 300))])
            client.remove_sequences(["sub0"])
        d.shutdown()  # closes the store via the engine
        reopened = SegmentStore.open(directory, expect_w=W_PARAMS.w)
        names = reopened.names()
        assert "durable" in names and "sub0" not in names
        d2 = OrisDaemon(params=W_PARAMS, config=config, store=reopened)
        d2.start()
        try:
            host, port = d2.address
            bank, _ = reopened.merged()
            seq = subjects["sub1"][:160]
            with OrisClient(host, port) as client:
                assert client.query("again", seq) == _single_shot(
                    "again", seq, bank
                )
        finally:
            d2.shutdown()
