#!/usr/bin/env python
"""CI smoke test: the crash-safe segment store, kill-tested for real.

Phase 1 — **SIGKILL roulette**.  A child process mutates a segment
store in a seeded op loop (add / remove / flush / compact, one durable
op at a time).  The parent SIGKILLs it at a randomized delay, reopens
the store, and requires (a) a consistent manifest generation, (b) the
merged view byte-identical to a cold full rebuild of the same logical
bank, and (c) no ``*.tmp`` debris surviving the janitor.  Repeated for
``--rounds`` rounds, each killing at a different point.

Phase 2 — **armed faults**.  The same op loop with each of the
deterministic fault points (``index.wal_truncate``,
``index.compact_crash``, ``index.manifest_torn``) armed at
probability 1.  The child must fail *cleanly* (StoreFailed, not a
traceback crash or corruption), and recovery must again be exact.

Phase 3 — **live mutation under a daemon**.  ``scoris-n serve --store``
seeds a store and serves it; concurrent client threads hammer queries
while ``scoris-n add-sequences`` grows the bank mid-stream.  Zero
queries may be refused, and every answer must be byte-identical to a
single-shot ``scoris-n compare`` against one of the bank generations
that could have served it.  SIGTERM must exit 0.

After everything: no ``/dev/shm/scoris_*`` segment and no temp file may
remain, and the store must reopen cleanly one last time.

Exit status 0 on success; non-zero with a diagnostic otherwise.  A
machine-readable summary is appended to ``--report`` (default
``index_crash_smoke_report.txt``) for CI artifact upload.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

W = 8
FILTER = "dust"
CHILD_EXIT_STOREFAILED = 7
TIMEOUT = 600.0

_REPORT: list[str] = []


def note(line: str) -> None:
    print(line, flush=True)
    _REPORT.append(line)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    note(f"FAIL: {message}")
    raise SystemExit(1)


def child_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    env.update(extra)
    return env


def shm_segments() -> set:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.glob("scoris_*")}


# --------------------------------------------------------------------------
# Child op loop (run as: ci_index_crash_smoke.py --child STORE_DIR SEED)
# --------------------------------------------------------------------------

def run_child(store_dir: Path, seed: int) -> int:
    """Mutate the store forever; the parent decides when we die."""
    import numpy as np

    from repro.data.synthetic import random_dna
    from repro.index import SegmentStore, StoreFailed

    rng = np.random.default_rng(seed)
    counter = 0
    try:
        store = SegmentStore.open_or_create(store_dir, w=W, filter_kind=FILTER)
    except StoreFailed as exc:
        print(f"storefailed: {exc}", flush=True)
        return CHILD_EXIT_STOREFAILED
    try:
        while True:
            roll = rng.random()
            if roll < 0.55 or store.n_sequences < 3:
                counter += 1
                name = f"seq_{seed}_{counter}_{int(rng.integers(1 << 30))}"
                store.add_many([(name, random_dna(rng, int(rng.integers(120, 500))))])
            elif roll < 0.75:
                names = store.names()
                store.remove_many([names[int(rng.integers(len(names)))]])
            elif roll < 0.92:
                store.flush()
            else:
                store.compact()
            print(f"op {counter}", flush=True)
    except StoreFailed as exc:
        print(f"storefailed: {exc}", flush=True)
        return CHILD_EXIT_STOREFAILED
    finally:
        store.close()


# --------------------------------------------------------------------------
# Recovery verification
# --------------------------------------------------------------------------

def verify_recovery(store_dir: Path, context: str) -> dict:
    """Reopen the store and require exact, debris-free recovery."""
    import numpy as np

    from repro.filters import make_filter_mask
    from repro.index import SegmentStore
    from repro.index.seed_index import CsrSeedIndex
    from repro.io.bank import Bank

    try:
        store = SegmentStore.open(store_dir, expect_w=W, expect_filter=FILTER)
    except FileNotFoundError:
        # Killed before the very first manifest became durable: an empty
        # directory (or a bare WAL with no manifest) is a legal crash
        # state -- create() must be able to start over on it.
        SegmentStore.create(store_dir, w=W, filter_kind=FILTER).close()
        store = SegmentStore.open(store_dir, expect_w=W, expect_filter=FILTER)
    except Exception as exc:  # noqa: BLE001 - any failure here is the bug
        fail(f"{context}: store did not reopen: {type(exc).__name__}: {exc}")
    with store:
        health = store.health()
        if not health["ok"]:
            fail(f"{context}: reopened store reports unhealthy: {health}")
        if store.n_sequences:
            merged_bank, merged_index = store.merged()
            records = store.logical_records()
            want_bank = Bank([n for n, _ in records], [a for _, a in records])
            want_index = CsrSeedIndex(
                want_bank, W, make_filter_mask(want_bank, FILTER)
            )
            if merged_bank.names != want_bank.names or not np.array_equal(
                merged_bank.seq, want_bank.seq
            ):
                fail(f"{context}: merged bank differs from cold rebuild")
            for field in (
                "positions", "sorted_codes", "unique_codes",
                "code_starts", "code_counts", "codes_at",
            ):
                got = getattr(merged_index, field)
                want = getattr(want_index, field)
                if got.dtype != want.dtype or not np.array_equal(got, want):
                    fail(
                        f"{context}: merged index field {field} not "
                        f"byte-identical to cold rebuild"
                    )
        leftovers = sorted(p.name for p in store_dir.glob("*.tmp"))
        if leftovers:
            fail(f"{context}: temp debris survived recovery: {leftovers}")
        return health


def one_crash_round(store_dir: Path, seed: int, delay: float) -> dict:
    proc = subprocess.Popen(
        [sys.executable, str(Path(__file__).resolve()), "--child",
         str(store_dir), str(seed)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=child_env(),
        cwd=REPO,
    )
    time.sleep(delay)
    proc.kill()
    proc.wait(timeout=30)
    return verify_recovery(store_dir, f"round seed={seed} delay={delay:.3f}s")


def one_fault_round(store_dir: Path, seed: int, point: str) -> None:
    # Seed the store fault-free first: the fault must land on a *live*
    # store's mutation path, not on initialisation.
    from repro.data.synthetic import random_dna
    import numpy as np

    rng = np.random.default_rng(seed)
    from repro.index import SegmentStore

    with SegmentStore.create(store_dir, w=W, filter_kind=FILTER) as seeded:
        seeded.add_many(
            [(f"base{i}", random_dna(rng, 300)) for i in range(4)]
        )
        seeded.flush()
    spec = f"{point}:1.0:{seed}"
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child",
         str(store_dir), str(seed)],
        capture_output=True,
        text=True,
        env=child_env(SCORIS_FAULTS=spec),
        cwd=REPO,
        timeout=TIMEOUT,
    )
    if proc.returncode != CHILD_EXIT_STOREFAILED:
        fail(
            f"fault {point}: child exited {proc.returncode} "
            f"(wanted clean StoreFailed={CHILD_EXIT_STOREFAILED}); "
            f"stderr: {proc.stderr[-500:]}"
        )
    health = verify_recovery(store_dir, f"fault {point}")
    note(
        f"ok: fault {point} -> clean StoreFailed, exact recovery "
        f"(generation={health['generation']}, n={health['n_sequences']})"
    )


# --------------------------------------------------------------------------
# Phase 3: live daemon mutation
# --------------------------------------------------------------------------

def reference_m8(bank_path: Path, name: str, seq: str, directory: Path) -> str:
    qpath = directory / f"ref_{name}.fa"
    qpath.write_text(f">{name}\n{seq}\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "compare", str(qpath), str(bank_path)],
        capture_output=True,
        text=True,
        env=child_env(),
        timeout=TIMEOUT,
        cwd=REPO,
    )
    if proc.returncode != 0:
        fail(f"reference compare for {name} exited {proc.returncode}: {proc.stderr}")
    return proc.stdout


def daemon_phase(workdir: Path) -> None:
    import numpy as np

    from repro.data.synthetic import random_dna
    from repro.index import SegmentStore
    from repro.serve.client import OrisClient

    rng = np.random.default_rng(20080611)
    subjects = {f"subj{i}": random_dna(rng, 700) for i in range(12)}
    added = {f"grown{i}": random_dna(rng, 700) for i in range(4)}

    seed_fa = workdir / "seed_bank.fa"
    seed_fa.write_text("".join(f">{n}\n{s}\n" for n, s in subjects.items()))
    add_fa = workdir / "added.fa"
    add_fa.write_text("".join(f">{n}\n{s}\n" for n, s in added.items()))
    bank_v1 = seed_fa
    bank_v2 = workdir / "bank_v2.fa"
    bank_v2.write_text(
        "".join(f">{n}\n{s}\n" for n, s in {**subjects, **added}.items())
    )

    queries = []
    pool = list(subjects.values())
    for i in range(6):
        src = pool[int(rng.integers(len(pool)))]
        a = int(rng.integers(0, len(src) - 150))
        queries.append((f"q{i}", src[a : a + 150]))
    # One query that can only hit after the live add lands.
    grown_probe = ("qgrown", next(iter(added.values()))[100:280])

    store_dir = workdir / "served_store"
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(seed_fa),
         "--store", str(store_dir), "--port", "0", "--workers", "2",
         "--max-delay-ms", "5", "--no-memory-check"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=child_env(),
        cwd=REPO,
    )
    try:
        ready = ""
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = daemon.stdout.readline()
            if not line:
                break
            if line.startswith("SERVE READY"):
                ready = line
                break
        if not ready:
            daemon.kill()
            fail(f"daemon never became ready: {daemon.stderr.read()[-800:]}")
        port = int(ready.split("port=")[1].strip())
        note(f"ok: daemon serving store on port {port}")
        # Keep draining stdout so a chatty daemon can never block on a
        # full pipe.
        threading.Thread(
            target=lambda: daemon.stdout.read(), daemon=True
        ).start()

        refs_v1 = {
            n: reference_m8(bank_v1, n, s, workdir) for n, s in queries
        }
        refs_v2 = {
            n: reference_m8(bank_v2, n, s, workdir) for n, s in queries
        }

        errors: list = []
        counts = {n: 0 for n, _ in queries}
        stop = threading.Event()

        def hammer(name: str, seq: str) -> None:
            try:
                with OrisClient("127.0.0.1", port, timeout=60.0) as client:
                    while not stop.is_set():
                        got = client.query(name, seq)
                        if got not in (refs_v1[name], refs_v2[name]):
                            errors.append((name, "answer matched no generation"))
                            return
                        counts[name] += 1
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, f"{type(exc).__name__}: {exc}"))

        threads = [
            threading.Thread(target=hammer, args=q, daemon=True) for q in queries
        ]
        for t in threads:
            t.start()
        time.sleep(0.5)

        add = subprocess.run(
            [sys.executable, "-m", "repro.cli", "add-sequences", str(add_fa),
             "--port", str(port)],
            capture_output=True,
            text=True,
            env=child_env(),
            timeout=TIMEOUT,
            cwd=REPO,
        )
        if add.returncode != 0:
            stop.set()
            fail(f"add-sequences exited {add.returncode}: {add.stderr}")
        note(f"ok: live add-sequences: {add.stdout.strip()}")

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(60.0)
        if errors:
            fail(f"queries failed during live mutation: {errors[:3]}")
        total = sum(counts.values())
        if total < len(queries):
            fail(f"hammer threads barely ran ({counts})")
        note(f"ok: {total} concurrent queries straddled the swap, zero refused")

        with OrisClient("127.0.0.1", port, timeout=60.0) as client:
            got = client.query(*grown_probe)
            want = reference_m8(bank_v2, *grown_probe, workdir)
            if got != want:
                fail("query against freshly added sequence is not byte-identical")
            health = client.health()
            store_health = health["components"].get("store")
            if not (store_health and store_health["ok"]):
                fail(f"daemon health lacks a healthy store component: {health}")
        note("ok: planted query hits the grown bank, byte-identical")

        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=60)
        if rc != 0:
            fail(f"daemon exited {rc} on SIGTERM: {daemon.stderr.read()[-800:]}")
        note("ok: SIGTERM -> exit 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    # The daemon built the store with its own default seed width; just
    # require that it reopens consistently with everything durable.
    with SegmentStore.open(store_dir) as store:
        names = set(store.names())
        missing = set(added) - names
        if missing:
            fail(f"added sequences not durable across daemon exit: {missing}")
    note("ok: store reopens after daemon exit with all live additions durable")


# --------------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=10,
                        help="SIGKILL roulette rounds (default 10)")
    parser.add_argument("--report", default="index_crash_smoke_report.txt")
    parser.add_argument("--child", nargs=2, metavar=("STORE_DIR", "SEED"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.child:
        raise SystemExit(run_child(Path(args.child[0]), int(args.child[1])))

    import numpy as np

    shm_before = shm_segments()
    rng = np.random.default_rng(1)
    started = time.monotonic()
    try:
        with tempfile.TemporaryDirectory(prefix="scoris_crash_smoke_") as tmp:
            workdir = Path(tmp)

            note(f"phase 1: SIGKILL roulette, {args.rounds} rounds")
            store_dir = workdir / "roulette_store"
            for i in range(args.rounds):
                delay = 0.05 + float(rng.random()) * 0.6
                health = one_crash_round(store_dir, seed=100 + i, delay=delay)
                note(
                    f"ok: round {i}: killed at {delay:.3f}s, recovered exact "
                    f"(generation={health['generation']}, "
                    f"n={health['n_sequences']}, "
                    f"segments={health['segments']}, "
                    f"wal_records={health['wal_records']})"
                )

            note("phase 2: armed fault points")
            for point in (
                "index.wal_truncate",
                "index.compact_crash",
                "index.manifest_torn",
            ):
                fault_dir = workdir / point.replace(".", "_")
                one_fault_round(fault_dir, seed=7, point=point)

            note("phase 3: zero-downtime mutation under a live daemon")
            daemon_phase(workdir)

        leaked = shm_segments() - shm_before
        if leaked:
            fail(f"leaked /dev/shm segments: {sorted(leaked)}")
        note("ok: no /dev/shm leaks")
        note(f"PASS index-crash-smoke in {time.monotonic() - started:.1f}s")
    finally:
        Path(args.report).write_text("\n".join(_REPORT) + "\n")


if __name__ == "__main__":
    main()
