#!/usr/bin/env python
"""CI smoke test: the resident query daemon, end to end, across real
process boundaries.

Scenarios (all against one ``scoris-n serve`` subprocess):

  1. **Correctness under concurrency** — 50 queries from 8 client
     threads; every response must be byte-identical to a single-shot
     ``scoris-n compare`` of that query against the same bank (run as
     its own subprocess, so the reference can share nothing with the
     daemon).
  2. **Soak** — 1000 further requests from 8 threads.  The daemon must
     answer every one, keep exactly ``--workers`` persistent worker
     processes (no per-batch spawn/leak), and report sane service
     metrics (accepted counter, queue-depth gauge, batch histograms).
  3. **Graceful drain** — SIGTERM lands while a large query is in
     flight.  The in-flight query must complete (byte-identical to its
     reference), later queries must be refused with a clean
     ``draining`` status or a closed connection -- never a hang or a
     traceback -- and the daemon must exit 0.

After the daemon exits: no ``/dev/shm/scoris_*`` segment may remain
and no worker process may outlive its parent.

Exit status 0 on success; non-zero with a diagnostic otherwise.  A
machine-readable summary is appended to ``--report`` (default
``serve_smoke_report.txt``) for CI artifact upload.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.data.synthetic import mutate, random_dna  # noqa: E402
from repro.serve.client import (  # noqa: E402
    OrisClient,
    ProtocolError,
    ServerDraining,
    ServerShed,
    ServiceError,
)

N_SUBJECTS = 16
SUBJECT_LEN = 800
N_DISTINCT_QUERIES = 12
N_CONCURRENT = 50
N_THREADS = 8
N_SOAK = 1000
TIMEOUT = 600.0

_REPORT: list[str] = []


def note(line: str) -> None:
    print(line, flush=True)
    _REPORT.append(line)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    note(f"FAIL: {message}")
    raise SystemExit(1)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    return env


def build_inputs(directory: Path):
    import numpy as np

    rng = np.random.default_rng(20080611)
    subjects = [random_dna(rng, SUBJECT_LEN) for _ in range(N_SUBJECTS)]
    bank_path = directory / "bank2.fa"
    with open(bank_path, "w") as fh:
        for i, s in enumerate(subjects):
            fh.write(f">subj{i}\n{s}\n")
    queries = []
    for i in range(N_DISTINCT_QUERIES):
        src = subjects[int(rng.integers(N_SUBJECTS))]
        a = int(rng.integers(0, SUBJECT_LEN - 150))
        frag = mutate(rng, src[a : a + 150], sub_rate=0.02)
        queries.append((f"q{i}", frag))
    # The drain scenario's deliberately expensive query: lots of real
    # homology, so its batch takes long enough to straddle a SIGTERM.
    big = "".join(
        subjects[i % N_SUBJECTS][j : j + 400]
        for i, j in enumerate(range(0, 200, 50))
        for _ in range(8)
    )
    return bank_path, queries, ("qbig", big)


def reference_m8(bank_path: Path, name: str, seq: str, directory: Path) -> str:
    qpath = directory / f"ref_{name}.fa"
    qpath.write_text(f">{name}\n{seq}\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "compare", str(qpath), str(bank_path)],
        capture_output=True,
        text=True,
        env=child_env(),
        timeout=TIMEOUT,
        cwd=REPO,
    )
    if proc.returncode != 0:
        fail(f"reference compare for {name} exited {proc.returncode}: {proc.stderr}")
    return proc.stdout


def shm_segments() -> set:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.glob("scoris_*")}


def worker_pids(parent_pid: int) -> list:
    """Child pids of *parent_pid* (the daemon's pooled workers)."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        # field 4 of /proc/<pid>/stat (after the parenthesised comm)
        try:
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (IndexError, ValueError):
            continue
        if ppid == parent_pid:
            pids.append(int(entry.name))
    return pids


def start_daemon(bank_path: Path) -> tuple:
    # Readiness comes from --announce-file, not stdout scraping: the
    # daemon atomically writes {host, port, pid} once the socket is
    # bound, and the pid field rejects a stale file from a previous run.
    announce = bank_path.parent / "daemon.announce.json"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(bank_path),
            "--workers", "2", "--max-delay-ms", "20", "--no-memory-check",
            "--announce-file", str(announce),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=child_env(),
        cwd=REPO,
    )
    deadline = time.monotonic() + 120.0
    info = None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"daemon died at startup: {proc.stderr.read()}")
        try:
            data = json.loads(announce.read_text())
        except (OSError, json.JSONDecodeError):
            time.sleep(0.05)
            continue
        if data.get("pid") == proc.pid:
            info = data
            break
        time.sleep(0.05)
    if info is None:
        fail("daemon never wrote its announce file")
    host, port = info["host"], int(info["port"])
    note(f"daemon ready on {host}:{port} (pid {proc.pid}, via announce file)")
    return proc, host, port


def run_clients(host, port, jobs, n_threads):
    """Fan *jobs* out over *n_threads*; returns (results, errors)."""
    work = queue.Queue()
    for job in jobs:
        work.put(job)
    results: dict = {}
    errors: list = []
    lock = threading.Lock()

    def drone():
        with OrisClient(host, port, timeout=TIMEOUT) as client:
            while True:
                try:
                    jid, name, seq = work.get_nowait()
                except queue.Empty:
                    return
                try:
                    m8 = client.query(name, seq)
                except Exception as exc:  # noqa: BLE001 - collected
                    with lock:
                        errors.append((jid, repr(exc)))
                else:
                    with lock:
                        results[jid] = m8

    threads = [threading.Thread(target=drone) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(TIMEOUT)
    return results, errors


def scenario_concurrent(host, port, queries, references):
    jobs = [
        (i, *queries[i % len(queries)]) for i in range(N_CONCURRENT)
    ]
    results, errors = run_clients(host, port, jobs, N_THREADS)
    if errors:
        fail(f"concurrent scenario saw client errors: {errors[:5]}")
    if len(results) != N_CONCURRENT:
        fail(f"only {len(results)}/{N_CONCURRENT} queries answered")
    for jid, name, _seq in jobs:
        if results[jid] != references[name]:
            fail(f"served output for {name} (job {jid}) differs from compare")
    note(f"concurrent OK: {N_CONCURRENT} queries on {N_THREADS} threads, "
         "all byte-identical to single-shot compare")


def scenario_soak(host, port, queries, daemon_pid, children_baseline):
    jobs = [(i, *queries[i % len(queries)]) for i in range(N_SOAK)]
    t0 = time.monotonic()
    results, errors = run_clients(host, port, jobs, N_THREADS)
    dt = time.monotonic() - t0
    if errors:
        fail(f"soak saw client errors: {errors[:5]}")
    if len(results) != N_SOAK:
        fail(f"soak answered {len(results)}/{N_SOAK}")
    # The worker pool is persistent: the daemon's child set (2 workers
    # plus multiprocessing bookkeeping) must not grow across 1k requests.
    workers = set(worker_pids(daemon_pid))
    if workers != children_baseline:
        fail(f"daemon children changed across the soak: "
             f"{sorted(children_baseline)} -> {sorted(workers)}")
    with OrisClient(host, port, timeout=30.0) as client:
        metrics = client.stats()
    accepted = metrics["counters"].get("serve.requests_accepted", 0)
    batches = metrics["counters"].get("serve.batches", 0)
    if accepted < N_SOAK:
        fail(f"accepted counter {accepted} < soak volume {N_SOAK}")
    if "serve.queue_depth" not in metrics["gauges"]:
        fail("queue-depth gauge missing from service metrics")
    for h in ("serve.batch_size", "serve.batch_latency_seconds",
              "serve.request_wait_seconds"):
        if metrics["histograms"].get(h, {}).get("count", 0) < 1:
            fail(f"histogram {h} missing or empty")
    note(f"soak OK: {N_SOAK} requests in {dt:.1f}s "
         f"({N_SOAK / dt:.0f} rps), {batches} batches, "
         f"{len(workers)} persistent children (no per-batch spawn)")


def scenario_drain(proc, host, port, big_query, big_reference):
    name, seq = big_query
    inflight: dict = {}

    def send_big():
        try:
            with OrisClient(host, port, timeout=TIMEOUT) as client:
                inflight["m8"] = client.query(name, seq, timeout_s=TIMEOUT)
        except Exception as exc:  # noqa: BLE001 - inspected below
            inflight["error"] = repr(exc)

    t = threading.Thread(target=send_big)
    t.start()
    time.sleep(0.3)  # let the big query's batch start RUNNING
    proc.send_signal(signal.SIGTERM)
    # Queries arriving after SIGTERM must be refused cleanly.
    refused = 0
    for _ in range(5):
        try:
            with OrisClient(host, port, timeout=10.0) as client:
                client.query("late", "ACGT" * 30)
        except (ServerDraining, ServerShed) as exc:
            refused += 1
            note(f"  late query refused cleanly: {type(exc).__name__}")
        except (ConnectionError, ProtocolError, OSError, ServiceError):
            refused += 1  # listener already closed: equally clean
        else:
            fail("a query was admitted after SIGTERM began the drain")
        time.sleep(0.05)
    t.join(TIMEOUT)
    if "m8" not in inflight:
        fail(f"in-flight query did not complete through the drain: "
             f"{inflight.get('error', 'no response')}")
    if inflight["m8"] != big_reference:
        fail("in-flight query's drained response differs from compare")
    try:
        code = proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon did not exit within 60s of SIGTERM")
    if code != 0:
        fail(f"daemon exited {code} after graceful drain (expected 0)")
    note(f"drain OK: in-flight query completed byte-identical, "
         f"{refused}/5 late queries refused cleanly, exit 0")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", default="serve_smoke_report.txt")
    args = parser.parse_args()

    before_shm = shm_segments()
    with tempfile.TemporaryDirectory(prefix="scoris_serve_smoke_") as tmp:
        directory = Path(tmp)
        bank_path, queries, big_query = build_inputs(directory)
        note(f"bank: {N_SUBJECTS} x {SUBJECT_LEN} nt; "
             f"{len(queries)} distinct queries + 1 large drain query "
             f"({len(big_query[1])} nt)")
        references = {
            name: reference_m8(bank_path, name, seq, directory)
            for name, seq in queries
        }
        big_reference = reference_m8(bank_path, *big_query, directory)
        n_records = sum(r.count("\n") for r in references.values())
        note(f"references built: {n_records} m8 records across the query set")

        proc, host, port = start_daemon(bank_path)
        try:
            scenario_concurrent(host, port, queries, references)
            children_baseline = set(worker_pids(proc.pid))
            scenario_soak(host, port, queries, proc.pid, children_baseline)
            workers_before_exit = worker_pids(proc.pid)
            scenario_drain(proc, host, port, big_query, big_reference)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Leak checks: nothing outlives the daemon.
        leaked_shm = shm_segments() - before_shm
        if leaked_shm:
            fail(f"leaked /dev/shm segments: {sorted(leaked_shm)}")
        # Workers (and the multiprocessing resource tracker) notice the
        # parent's death asynchronously; give them a bounded grace period.
        deadline = time.monotonic() + 15.0
        survivors = list(workers_before_exit)
        while survivors and time.monotonic() < deadline:
            survivors = [pid for pid in survivors
                         if Path(f"/proc/{pid}").exists()]
            if survivors:
                time.sleep(0.25)
        if survivors:
            fail(f"worker processes outlived the daemon: {survivors}")
        note("leak checks OK: 0 shm segments, 0 orphaned workers")

    note("SERVE SMOKE PASSED")
    Path(args.report).write_text("\n".join(_REPORT) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
