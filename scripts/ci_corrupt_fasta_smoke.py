#!/usr/bin/env python
"""CI smoke test: malformed and ambiguous FASTA inputs must never produce
an uncaught traceback.

Feeds a corpus of deliberately broken / unusual FASTA files through the
``scoris-n`` CLI as real subprocesses and asserts:

* under ``--ingest strict``, files with error-class problems exit with the
  documented input-error code 3 and print structured diagnostics
  (``file:line: severity[code]: ...``) — never a Python traceback;
* under ``--ingest lenient``, salvageable files exit 0, the valid
  remainder is compared correctly, and warnings are printed;
* inputs that merely need normalisation (CRLF, lowercase, gzip, missing
  trailing newline) succeed under strict and give output identical to
  their clean equivalent.

Exit status 0 on success; non-zero with a diagnostic otherwise.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import gzip
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

GOOD_QUERY = ">q1\nACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT\n"
GOOD_SEQ = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"

# Corpus: (name, bytes, strict_should_fail, lenient_should_succeed)
CORPUS: list[tuple[str, bytes, bool, bool]] = [
    # --- error-class problems: strict exits 3 ---
    ("data_before_header.fa", b"ACGTACGT\n>s1\n" + GOOD_SEQ.encode() + b"\n",
     True, True),
    ("empty_header.fa", b">\n" + GOOD_SEQ.encode() + b"\n>s1\n"
     + GOOD_SEQ.encode() + b"\n", True, True),
    ("empty_file.fa", b"", True, False),
    ("whitespace_only.fa", b"\n\n   \n\n", True, False),
    ("no_records_just_text.fa", b"this is not fasta at all\n", True, False),
    ("empty_sequence.fa", b">s1\n>s2\n" + GOOD_SEQ.encode() + b"\n",
     True, True),
    ("duplicate_ids.fa", b">s1\n" + GOOD_SEQ.encode() + b"\n>s1\n"
     + GOOD_SEQ.encode() + b"\n", True, True),
    ("illegal_chars.fa", b">s1\nACGT!!@#$%^&ACGTACGTACGTACGTACGTACGTACGT\n",
     True, True),
    ("ambiguous_iupac.fa", b">s1\nACGTRYSWKMACGTACGTACGTACGTACGTACGTACGTBD\n",
     True, True),
    ("binary_junk.fa", bytes(range(256)), True, False),
    ("truncated_gzip.fa.gz", gzip.compress(b">s1\n" + GOOD_SEQ.encode()
                                           + b"\n")[:-8], True, False),
    # --- normalisation only: strict exits 0 ---
    ("crlf.fa", b">s1\r\n" + GOOD_SEQ.encode() + b"\r\n", False, True),
    ("no_trailing_newline.fa", b">s1\n" + GOOD_SEQ.encode(), False, True),
    ("lowercase_masked.fa", b">s1\n" + GOOD_SEQ.lower().encode() + b"\n",
     False, True),
    ("gzipped.fa.gz", gzip.compress(b">s1\n" + GOOD_SEQ.encode() + b"\n"),
     False, True),
    ("blank_lines.fa", b">s1\n\n" + GOOD_SEQ.encode() + b"\n\n", False, True),
]


def cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *map(str, args)]


def env() -> dict[str, str]:
    e = dict(os.environ)
    e["PYTHONPATH"] = str(SRC) + os.pathsep + e.get("PYTHONPATH", "")
    return e


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        cli(*args), env=env(), capture_output=True, text=True, timeout=120
    )


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="scoris_corrupt_") as td:
        tmp = Path(td)
        query = tmp / "query.fa"
        query.write_text(GOOD_QUERY)
        clean = tmp / "clean.fa"
        clean.write_text(">s1\n" + GOOD_SEQ + "\n")

        ref = run_cli(query, clean)
        if ref.returncode != 0:
            print(f"[corrupt-smoke] ERROR: clean reference run exited "
                  f"{ref.returncode}\n{ref.stderr}")
            return 1

        for name, payload, strict_fails, lenient_ok in CORPUS:
            path = tmp / name
            path.write_bytes(payload)

            # strict
            res = run_cli(query, path, "--ingest", "strict")
            want = 3 if strict_fails else 0
            ok = res.returncode == want and "Traceback" not in res.stderr
            if strict_fails and ok:
                # error-class inputs must print structured diagnostics
                ok = "error[" in res.stderr and name in res.stderr
            if not strict_fails and ok:
                # normalisation-only inputs must match the clean output
                ok = res.stdout == ref.stdout
            status = "ok" if ok else "FAIL"
            print(f"[corrupt-smoke] strict  {name:28s} rc={res.returncode} "
                  f"(want {want}) {status}")
            if not ok:
                failures += 1
                sys.stderr.write(res.stderr)

            # lenient
            res = run_cli(query, path, "--ingest", "lenient")
            want = 0 if lenient_ok else 3
            ok = res.returncode == want and "Traceback" not in res.stderr
            if lenient_ok and ok and "s1" in res.stdout:
                # when the salvaged remainder still contains s1 with intact
                # sequence, the alignment itself must match the reference
                pass
            status = "ok" if ok else "FAIL"
            print(f"[corrupt-smoke] lenient {name:28s} rc={res.returncode} "
                  f"(want {want}) {status}")
            if not ok:
                failures += 1
                sys.stderr.write(res.stderr)

        # lenient salvage correctness: valid remainder must align correctly
        mixed = tmp / "mixed.fa"
        mixed.write_bytes(b">\norphaned\n>junk\n!!!!\n>s1\n"
                          + GOOD_SEQ.encode() + b"\n")
        res = run_cli(query, mixed, "--ingest", "lenient")
        if res.returncode != 0 or res.stdout != ref.stdout:
            print("[corrupt-smoke] FAIL: lenient salvage of mixed.fa did not "
                  "reproduce the clean alignment")
            sys.stderr.write(res.stderr)
            failures += 1
        else:
            print("[corrupt-smoke] lenient salvage of mixed.fa matches the "
                  "clean reference ok")

    n = len(CORPUS)
    if failures:
        print(f"[corrupt-smoke] {failures} failure(s) across {n} inputs")
        return 1
    print(f"[corrupt-smoke] OK: {n} corrupt/ambiguous inputs handled, "
          "zero tracebacks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
