#!/usr/bin/env python
"""CI chaos test: the query daemon under deterministic fault injection.

The daemon is started with two armed fault points
(``repro.runtime.faults``, via the hidden ``serve --faults`` flag):

* ``worker.crash:0.05:1234`` -- each range task has a 5 % chance of
  killing its worker process mid-task.  The scheduler must requeue, the
  pool must respawn (with backoff), and no client may ever notice.
* ``serve.poison_query:1.0:0:POISONQ`` -- any query whose name contains
  ``POISONQ`` deterministically fails its whole batch.  The batcher must
  bisect the batch, answer every innocent co-batched query with its real
  result, quarantine the poison sequence, and answer it ``poisoned``.

Scenarios (all against one ``scoris-n serve`` subprocess):

  1. **Soak under crashes** -- 500 queries from 8 retrying clients, one
     of them the seeded poison query.  Every non-poisoned answer must be
     byte-identical to a single-shot ``compare`` subprocess; the poison
     query must raise ``QueryPoisoned`` and be poisoned *exactly once*
     (``serve.queries_poisoned == 1``).
  2. **Quarantine replay** -- the same poison sequence under an innocent
     name is answered ``poisoned`` from quarantine without burning
     another batch (``serve.quarantine_hits`` increments).
  3. **End-of-soak health** -- the ``health`` endpoint must report every
     component ok, zero admission slots in flight, and at least one pool
     respawn actually exercised.
  4. **Clean exit** -- SIGTERM drains the daemon to exit 0 with no
     leaked ``/dev/shm`` segment and no surviving worker process.

Exit status 0 on success; non-zero with a diagnostic otherwise.  A
machine-readable summary is appended to ``--report`` (default
``chaos_smoke_report.txt``) for CI artifact upload.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import os
import queue
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.data.synthetic import mutate, random_dna  # noqa: E402
from repro.serve.client import OrisClient, QueryPoisoned  # noqa: E402

N_SUBJECTS = 16
SUBJECT_LEN = 800
N_DISTINCT_QUERIES = 12
N_SOAK = 500
N_THREADS = 8
TIMEOUT = 600.0
FAULT_SPEC = "worker.crash:0.05:1234,serve.poison_query:1.0:0:POISONQ"
POISON_NAME = "POISONQ_seeded"

_REPORT: list[str] = []


def note(line: str) -> None:
    print(line, flush=True)
    _REPORT.append(line)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    note(f"FAIL: {message}")
    raise SystemExit(1)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    return env


def build_inputs(directory: Path):
    import numpy as np

    rng = np.random.default_rng(20080611)
    subjects = [random_dna(rng, SUBJECT_LEN) for _ in range(N_SUBJECTS)]
    bank_path = directory / "bank2.fa"
    with open(bank_path, "w") as fh:
        for i, s in enumerate(subjects):
            fh.write(f">subj{i}\n{s}\n")
    queries = []
    for i in range(N_DISTINCT_QUERIES):
        src = subjects[int(rng.integers(N_SUBJECTS))]
        a = int(rng.integers(0, SUBJECT_LEN - 150))
        frag = mutate(rng, src[a : a + 150], sub_rate=0.02)
        queries.append((f"q{i}", frag))
    # The poison query: an ordinary homologous fragment -- only its
    # *name* matches the armed fault point's token.  Innocent co-batched
    # queries must still be answered when its batch blows up.
    poison = (POISON_NAME, mutate(rng, subjects[0][100:250], sub_rate=0.02))
    return bank_path, queries, poison


def reference_m8(bank_path: Path, name: str, seq: str, directory: Path) -> str:
    qpath = directory / f"ref_{name}.fa"
    qpath.write_text(f">{name}\n{seq}\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "compare", str(qpath), str(bank_path)],
        capture_output=True,
        text=True,
        env=child_env(),
        timeout=TIMEOUT,
        cwd=REPO,
    )
    if proc.returncode != 0:
        fail(f"reference compare for {name} exited {proc.returncode}: {proc.stderr}")
    return proc.stdout


def shm_segments() -> set:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.glob("scoris_*")}


def worker_pids(parent_pid: int) -> list:
    """Child pids of *parent_pid* (the daemon's pooled workers)."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        try:
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (IndexError, ValueError):
            continue
        if ppid == parent_pid:
            pids.append(int(entry.name))
    return pids


def start_daemon(bank_path: Path) -> tuple:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(bank_path),
            "--workers", "2", "--max-delay-ms", "20", "--no-memory-check",
            "--faults", FAULT_SPEC,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=child_env(),
        cwd=REPO,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 120.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline().strip()
        if line:
            break
        if proc.poll() is not None:
            fail(f"daemon died at startup: {proc.stderr.read()}")
    if not line.startswith("SERVE READY host="):
        fail(f"unexpected readiness line: {line!r}")
    host = line.split("host=", 1)[1].split()[0]
    port = int(line.rsplit("port=", 1)[1])
    note(f"daemon ready on {host}:{port} (pid {proc.pid}), "
         f"faults armed: {FAULT_SPEC}")
    return proc, host, port


def scenario_soak(host, port, queries, poison, references):
    """500 queries through retrying clients; one is the seeded poison."""
    jobs = [(i, *queries[i % len(queries)]) for i in range(N_SOAK - 1)]
    # Drop the poison mid-soak so it is co-batched with innocents.
    jobs.insert(N_SOAK // 2, ("poison", *poison))
    work = queue.Queue()
    for job in jobs:
        work.put(job)
    results: dict = {}
    errors: list = []
    poisoned: list = []
    lock = threading.Lock()
    retries_used = [0]

    def drone():
        # The retrying client is part of the contract under test: shed
        # responses and connection drops must be absorbed, not surfaced.
        with OrisClient(host, port, timeout=TIMEOUT, retries=5) as client:
            while True:
                try:
                    jid, name, seq = work.get_nowait()
                except queue.Empty:
                    with lock:
                        retries_used[0] += client.retries_used
                    return
                try:
                    m8 = client.query(name, seq)
                except QueryPoisoned as exc:
                    with lock:
                        poisoned.append((jid, name, exc.kind))
                except Exception as exc:  # noqa: BLE001 - collected
                    with lock:
                        errors.append((jid, name, repr(exc)))
                else:
                    with lock:
                        results[jid] = m8

    t0 = time.monotonic()
    threads = [threading.Thread(target=drone) for _ in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(TIMEOUT)
    dt = time.monotonic() - t0

    if errors:
        fail(f"soak saw non-poison client errors: {errors[:5]}")
    if poisoned != [("poison", POISON_NAME, "TaskPoisoned")]:
        fail(f"expected exactly the seeded query poisoned "
             f"(kind TaskPoisoned), got: {poisoned}")
    if len(results) != N_SOAK - 1:
        fail(f"soak answered {len(results)}/{N_SOAK - 1} innocent queries")
    for jid, name, _seq in jobs:
        if jid == "poison":
            continue
        if results[jid] != references[name]:
            fail(f"served output for {name} (job {jid}) differs from "
                 "single-shot compare")
    note(f"soak OK: {N_SOAK} requests in {dt:.1f}s ({N_SOAK / dt:.0f} rps) "
         f"under worker.crash p=0.05; every innocent answer byte-identical, "
         f"poison answered poisoned, {retries_used[0]} client retries absorbed")


def scenario_quarantine_replay(host, port, poison):
    """The poison *sequence* is quarantined, whatever it is named."""
    _name, seq = poison
    with OrisClient(host, port, timeout=TIMEOUT, retries=5) as client:
        try:
            client.query("innocent_name_same_sequence", seq)
        except QueryPoisoned:
            pass  # answered from quarantine, no batch burned
        else:
            fail("quarantined sequence was re-admitted under a new name")
        metrics = client.stats()
    counters = metrics["counters"]
    if counters.get("serve.queries_poisoned", 0) != 1:
        fail(f"queries_poisoned = {counters.get('serve.queries_poisoned')}, "
             "expected exactly 1 (the seeded poison, once)")
    if counters.get("serve.quarantine_hits", 0) < 1:
        fail("quarantine replay did not count a quarantine hit")
    if counters.get("serve.batch_bisections", 0) < 1:
        fail("the poisoned batch was never bisected")
    note(f"quarantine OK: poisoned exactly once, "
         f"{counters['serve.quarantine_hits']} replay(s) answered from "
         f"quarantine, {counters['serve.batch_bisections']} bisection(s)")


def scenario_health(host, port):
    with OrisClient(host, port, timeout=TIMEOUT) as client:
        health = client.health()
    if not health.get("healthy"):
        fail(f"daemon unhealthy after the soak: {health}")
    comp = health["components"]
    if comp["admission"]["in_flight"] != 0:
        fail(f"admission slots leaked: {comp['admission']['in_flight']} "
             "in flight with the soak finished")
    respawns = comp["pool"]["respawns"]
    if respawns < 1:
        fail("worker.crash at p=0.05 over 500 queries produced no respawn "
             "-- the fault hook or the respawn path is dead")
    if comp["pool"]["alive"] != comp["pool"]["pooled"]:
        fail(f"dead pooled workers at end of soak: {comp['pool']}")
    note(f"health OK: all components ok, 0 slots in flight, "
         f"{respawns} worker respawn(s), "
         f"{comp['pool']['replacements']} pool replacement(s)")


def scenario_exit(proc, workers_before_exit):
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon did not exit within 60s of SIGTERM")
    if code != 0:
        fail(f"daemon exited {code} after graceful drain (expected 0)")
    deadline = time.monotonic() + 15.0
    survivors = list(workers_before_exit)
    while survivors and time.monotonic() < deadline:
        survivors = [pid for pid in survivors if Path(f"/proc/{pid}").exists()]
        if survivors:
            time.sleep(0.25)
    if survivors:
        fail(f"worker processes outlived the daemon: {survivors}")
    note("exit OK: SIGTERM -> exit 0, no surviving workers")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", default="chaos_smoke_report.txt")
    args = parser.parse_args()

    before_shm = shm_segments()
    with tempfile.TemporaryDirectory(prefix="scoris_chaos_smoke_") as tmp:
        directory = Path(tmp)
        bank_path, queries, poison = build_inputs(directory)
        note(f"bank: {N_SUBJECTS} x {SUBJECT_LEN} nt; "
             f"{len(queries)} distinct queries + 1 poison query "
             f"({POISON_NAME})")
        references = {
            name: reference_m8(bank_path, name, seq, directory)
            for name, seq in queries
        }
        note(f"references built: "
             f"{sum(r.count(chr(10)) for r in references.values())} "
             "m8 records across the query set")

        proc, host, port = start_daemon(bank_path)
        try:
            scenario_soak(host, port, queries, poison, references)
            scenario_quarantine_replay(host, port, poison)
            scenario_health(host, port)
            workers_before_exit = worker_pids(proc.pid)
            scenario_exit(proc, workers_before_exit)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        leaked_shm = shm_segments() - before_shm
        if leaked_shm:
            fail(f"leaked /dev/shm segments: {sorted(leaked_shm)}")
        note("leak checks OK: 0 shm segments, 0 orphaned workers")

    note("CHAOS SMOKE PASSED")
    Path(args.report).write_text("\n".join(_REPORT) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
