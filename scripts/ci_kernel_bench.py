#!/usr/bin/env python
"""CI gate: the vector extension kernel must stay fast and exact.

Runs the single-core scalar-vs-vector cell of the step-2 extension
kernel (``measure_kernel_cell`` from the parallel-scaling benchmark) on
the quick-scale skewed pair, and fails when

* the two kernels disagree on any lane (kept/cut flags, work counter,
  or any surviving lane's HSP box), or
* the vector kernel's best-of-N time is less than ``MIN_KERNEL_SPEEDUP``
  (3x) faster than the scalar kernel's.

The identity check runs *before* any timing number is trusted, so a
kernel that got fast by getting wrong cannot pass.  Timing uses
best-of-``--repeat`` to shrug off CI neighbour noise.

Exit status 0 on success; non-zero with a diagnostic otherwise.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_parallel_scaling import (  # noqa: E402
    MIN_KERNEL_SPEEDUP,
    make_skewed_pair,
    measure_kernel_cell,
    skewed_params,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=45,
        help="skewed-pair scale (45 = quick bench tier)",
    )
    parser.add_argument(
        "--repeat", type=int, default=5,
        help="timing repetitions per kernel (best-of)",
    )
    args = parser.parse_args(argv)

    bank1, bank2 = make_skewed_pair(args.repeats)
    cell = measure_kernel_cell(
        bank1, bank2, skewed_params(), repeat=args.repeat
    )
    print(
        f"step-2 kernel cell over {cell['pairs']:,} pairs: "
        f"scalar {cell['scalar_seconds'] * 1e3:.1f} ms, "
        f"vector {cell['vector_seconds'] * 1e3:.1f} ms "
        f"=> {cell['speedup']:.2f}x (bar {MIN_KERNEL_SPEEDUP:.0f}x)"
    )
    failures = []
    if not cell["identical"]:
        failures.append("kernel outputs differ: vector != scalar lane-for-lane")
    if cell["speedup"] < MIN_KERNEL_SPEEDUP:
        failures.append(
            f"vector kernel speedup {cell['speedup']:.2f}x "
            f"below the {MIN_KERNEL_SPEEDUP:.0f}x bar"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("kernel bench gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
