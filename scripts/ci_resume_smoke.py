#!/usr/bin/env python
"""CI smoke test: kill a checkpointed parallel comparison mid-run, resume
it, and require byte-identical output — once with SIGKILL, once with
SIGTERM.

This exercises the full resilience story end to end, across real process
boundaries (no fault injection, no mocks):

  1. run the serial engine for a reference output;
  2. launch ``scoris-n --workers 2 --checkpoint ckpt/`` as a subprocess,
     wait until its journal shows completed tasks, then kill it:

     * **SIGKILL** to the whole process group — exactly what a batch
       scheduler's OOM killer does.  Nothing can be flushed; resume must
       survive a torn journal tail.
     * **SIGTERM** to the parent — the polite shutdown every scheduler
       sends first.  The run must drain in-flight tasks, flush the
       journal, and exit with the documented code 130.

  3. re-run with ``--resume`` and assert the output file is byte-identical
     to the uninterrupted serial run;
  4. assert no ``/dev/shm/scoris_*`` shared-memory block outlives its
     scenario: the graceful SIGTERM drain must unlink its own arena on
     the way out, and the SIGKILL orphan (nothing *can* unlink there)
     must be reaped by the next run's stale-segment sweep.

Exit status 0 on success; non-zero with a diagnostic otherwise.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.data.synthetic import mutate, random_dna  # noqa: E402
from repro.io.bank import Bank  # noqa: E402

N_SEQS = 40
SEQ_LEN = 1200
KILL_AFTER_TASKS = 2  # kill once this many task lines hit the journal
TIMEOUT = 600.0
EXIT_INTERRUPTED = 130


def build_banks(directory: Path) -> tuple[Path, Path]:
    import numpy as np

    rng = np.random.default_rng(20080517)
    cores = [random_dna(rng, SEQ_LEN) for _ in range(N_SEQS)]
    b1 = Bank.from_strings(
        [(f"q{i}", random_dna(rng, 80) + c) for i, c in enumerate(cores)]
    )
    b2 = Bank.from_strings(
        [
            (f"s{i}", mutate(rng, c, sub_rate=0.04) + random_dna(rng, 80))
            for i, c in enumerate(cores)
        ]
    )
    p1, p2 = directory / "bank1.fa", directory / "bank2.fa"
    b1.to_fasta(p1)
    b2.to_fasta(p2)
    return p1, p2


def cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *map(str, args)]


def env() -> dict[str, str]:
    e = dict(os.environ)
    e["PYTHONPATH"] = str(SRC) + os.pathsep + e.get("PYTHONPATH", "")
    return e


def scoris_shm_blocks() -> set[str]:
    """Names of our shared-memory blocks currently in /dev/shm."""
    from repro.runtime.shm import arena_prefix, shm_dir

    d = shm_dir()
    if d is None:  # platform without a visible shm filesystem
        return set()
    prefix = arena_prefix() + "_"
    return {p.name for p in Path(d).iterdir() if p.name.startswith(prefix)}


def check_no_shm_leak(label: str, baseline: set[str]) -> int:
    """Fail if any scoris shm block beyond *baseline* is still alive."""
    leaked = scoris_shm_blocks() - baseline
    if leaked:
        print(
            f"[smoke:{label}] ERROR: leaked shared-memory blocks in "
            f"/dev/shm: {sorted(leaked)}"
        )
        return 1
    print(f"[smoke:{label}] OK: no shared-memory blocks leaked", flush=True)
    return 0


def journal_task_lines(journal: Path) -> int:
    if not journal.is_file():
        return -1  # no journal yet (header not written)
    n = sum(1 for line in journal.read_bytes().splitlines() if line.strip())
    return n - 1  # minus the header line


def run_scenario(
    label: str,
    sig: signal.Signals,
    kill_group: bool,
    fa1: Path,
    fa2: Path,
    ref: Path,
    tmp: Path,
    shm_baseline: set[str],
) -> int:
    """Kill one checkpointed run with *sig*, resume, compare to *ref*."""
    out = tmp / f"resumed_{label}.m8"
    ckpt = tmp / f"ckpt_{label}"
    journal = ckpt / "journal.jsonl"

    print(f"[smoke:{label}] launching checkpointed parallel run ...", flush=True)
    proc = subprocess.Popen(
        cli(fa1, fa2, "--workers", "2", "--checkpoint", ckpt, "-o", out),
        env=env(),
        start_new_session=True,  # own process group: killpg reaps workers
    )
    deadline = time.monotonic() + TIMEOUT
    killed = False
    while time.monotonic() < deadline:
        done = journal_task_lines(journal)
        if done >= KILL_AFTER_TASKS and proc.poll() is None:
            if kill_group:
                os.killpg(proc.pid, sig)
            else:
                os.kill(proc.pid, sig)
            rc = proc.wait()
            killed = True
            print(
                f"[smoke:{label}] sent {sig.name} after {done} journalled "
                f"tasks; run exited {rc}",
                flush=True,
            )
            if sig == signal.SIGTERM:
                if rc != EXIT_INTERRUPTED:
                    print(
                        f"[smoke:{label}] ERROR: graceful shutdown should "
                        f"exit {EXIT_INTERRUPTED}, got {rc}"
                    )
                    return 1
                # The drain path must unlink its own arena on the way out.
                if check_no_shm_leak(label + ":drain", shm_baseline):
                    return 1
            break
        if proc.poll() is not None:
            break
        time.sleep(0.01)
    if not killed:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()
            print(f"[smoke:{label}] ERROR: run never journalled a task", flush=True)
            return 1
        # The run outpaced the poller; resume still must be a clean no-op.
        print(
            f"[smoke:{label}] WARNING: run finished before the kill "
            "(machine too fast / banks too small); "
            "resume degenerates to a no-op check",
            flush=True,
        )

    if not journal.is_file():
        print(f"[smoke:{label}] ERROR: no journal written before the kill")
        return 1
    print(
        f"[smoke:{label}] journal holds {journal_task_lines(journal)} task "
        "lines; resuming ...",
        flush=True,
    )
    res = subprocess.run(
        cli(
            fa1, fa2, "--workers", "2", "--checkpoint", ckpt,
            "--resume", "-o", out, "--stats",
        ),
        env=env(),
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
    )
    sys.stderr.write(res.stderr)
    if res.returncode != 0:
        print(f"[smoke:{label}] ERROR: --resume exited {res.returncode}")
        return 1

    if out.read_bytes() != ref.read_bytes():
        print(
            f"[smoke:{label}] ERROR: resumed output differs from the "
            "uninterrupted serial run"
        )
        return 1
    print(f"[smoke:{label}] OK: resumed output is byte-identical", flush=True)
    # A SIGKILLed run cannot clean up after itself; the resume run's
    # stale-segment sweep must have reaped its orphan by now.
    return check_no_shm_leak(label, shm_baseline)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="scoris_smoke_") as td:
        tmp = Path(td)
        fa1, fa2 = build_banks(tmp)
        ref = tmp / "reference.m8"
        shm_baseline = scoris_shm_blocks()  # tolerate unrelated runs

        print("[smoke] serial reference run ...", flush=True)
        subprocess.run(
            cli(fa1, fa2, "-o", ref), env=env(), check=True, timeout=TIMEOUT
        )
        n_ref = sum(1 for _ in ref.open())
        print(f"[smoke] reference: {n_ref} records", flush=True)

        # SIGKILL to the whole group: the OOM-killer scenario.
        rc = run_scenario(
            "sigkill", signal.SIGKILL, True, fa1, fa2, ref, tmp, shm_baseline
        )
        if rc != 0:
            return rc
        # SIGTERM to the parent: the graceful-shutdown scenario.
        rc = run_scenario(
            "sigterm", signal.SIGTERM, False, fa1, fa2, ref, tmp, shm_baseline
        )
        if rc != 0:
            return rc
        print(f"[smoke] OK: both scenarios byte-identical ({n_ref} records)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
