#!/usr/bin/env python
"""Regenerate the golden regression corpus under ``tests/golden/``.

Each case directory holds the two input banks (FASTA), the CLI arguments
that produced the expected output (``cmd.json``), and the byte-exact
``expected.m8``.  ``tests/test_golden_regression.py`` replays every case
through :func:`repro.cli.run` and fails on any byte of drift, so run this
script (and review the diff!) only when an output change is intended:

    PYTHONPATH=src python scripts/regen_golden.py

Inputs are generated deterministically (fixed seeds) so the corpus is
reproducible from this script alone.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import run  # noqa: E402
from repro.data.synthetic import (  # noqa: E402
    Transcriptome,
    make_est_bank,
    mutate,
    random_dna,
)
from repro.io.bank import Bank  # noqa: E402

GOLDEN = ROOT / "tests" / "golden"


def _est_case() -> tuple[Bank, Bank, list[str]]:
    """EST-vs-EST comparison with paper-default parameters."""
    rng = np.random.default_rng(101)
    tx = Transcriptome.generate(rng, n_genes=8, mean_len=420)
    b1 = make_est_bank(rng, tx, 16, name_prefix="ESTA")
    b2 = make_est_bank(rng, tx, 16, name_prefix="ESTB")
    return b1, b2, ["--sort", "coords"]


def _diverged_case() -> tuple[Bank, Bank, list[str]]:
    """Diverged homologs at a small word size, both strands, no filter."""
    rng = np.random.default_rng(202)
    recs1, recs2 = [], []
    for i in range(5):
        s = random_dna(rng, 500)
        recs1.append((f"ref{i}", s))
        recs2.append((f"div{i}", mutate(rng, s, sub_rate=0.10, indel_rate=0.01)))
    return (
        Bank.from_strings(recs1),
        Bank.from_strings(recs2),
        ["-W", "9", "--strand", "both", "--filter", "none", "--sort", "coords"],
    )


def _spaced_case() -> tuple[Bank, Bank, list[str]]:
    """PatternHunter spaced seed over noisy homologs."""
    rng = np.random.default_rng(303)
    recs1, recs2 = [], []
    for i in range(4):
        s = random_dna(rng, 400)
        recs1.append((f"qry{i}", s))
        recs2.append((f"sbj{i}", mutate(rng, s, sub_rate=0.06, indel_rate=0.0)))
    return (
        Bank.from_strings(recs1),
        Bank.from_strings(recs2),
        [
            "--spaced-seed",
            "111010010100110111",
            "--filter",
            "none",
            "--sort",
            "coords",
        ],
    )


CASES = {
    "est_default": _est_case,
    "diverged_w9_both": _diverged_case,
    "spaced_seed": _spaced_case,
}


def regenerate() -> None:
    for name, build in CASES.items():
        case_dir = GOLDEN / name
        case_dir.mkdir(parents=True, exist_ok=True)
        bank1, bank2, args = build()
        fa1 = case_dir / "bank1.fa"
        fa2 = case_dir / "bank2.fa"
        bank1.to_fasta(fa1)
        bank2.to_fasta(fa2)
        out = case_dir / "expected.m8"
        rc = run([str(fa1), str(fa2), "-o", str(out), *args])
        if rc != 0:
            raise SystemExit(f"case {name}: CLI exited {rc}")
        (case_dir / "cmd.json").write_text(
            json.dumps({"args": args}, indent=2) + "\n", encoding="utf-8"
        )
        n_records = sum(1 for _ in out.open())
        print(f"{name}: {n_records} records -> {out}")


if __name__ == "__main__":
    regenerate()
