#!/usr/bin/env python
"""CI smoke test: the sharded scatter-gather fleet, end to end, across
real process boundaries.

Scenarios (all against one ``scoris-n serve-fleet`` deployment of three
shard daemons plus a router, and one single-daemon reference):

  1. **Byte identity** — every golden-corpus query answered by the
     fleet must be *byte-identical* to the single daemon's answer over
     the uncut bank.  This is the fleet's entire contract: the seams
     are invisible.
  2. **Shard kill mid-soak** — while a query soak is running, one
     shard daemon is SIGKILLed.  The manager must respawn it, the
     router's health must return to all-ok, queries during the outage
     must either succeed (other shards survived the gather window) or
     fail *loudly* with a structured partial-result error -- never a
     silently truncated result -- and post-recovery answers must again
     be byte-identical.
  3. **Leaks** — after the fleet exits: no ``/dev/shm/scoris_*``
     segment, no surviving shard or worker process.

Exit status 0 on success; non-zero with a diagnostic otherwise.  A
machine-readable summary is appended to ``--report`` (default
``shard_smoke_report.txt``) for CI artifact upload.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.data.synthetic import mutate, random_dna  # noqa: E402
from repro.serve.client import (  # noqa: E402
    OrisClient,
    QueryFailed,
    ServerShed,
    ServiceError,
)

CHROM_NT = 30_000
CORE_NT = 300
N_SHARDS = 3
MAX_QUERY_NT = 600
SOAK_SECONDS = 12.0
TIMEOUT = 600.0

_REPORT: list[str] = []


def note(line: str) -> None:
    print(line, flush=True)
    _REPORT.append(line)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 compat
    note(f"FAIL: {message}")
    raise SystemExit(1)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    return env


def build_inputs(directory: Path):
    """A seam-heavy bank (repeated core motif through one long sequence)
    and a query set that includes seam-straddling fragments."""
    rng = np.random.default_rng(20080612)
    core = random_dna(rng, CORE_NT)
    parts, pos = [], 0
    while pos < CHROM_NT:
        fill = random_dna(rng, int(rng.integers(500, 1500)))
        parts.append(fill)
        pos += len(fill)
        hit = mutate(rng, core, sub_rate=0.02, indel_rate=0.0)
        parts.append(hit)
        pos += len(hit)
    chrom = "".join(parts)
    bank_path = directory / "bank2.fa"
    with open(bank_path, "w") as fh:
        fh.write(f">chrA\n{chrom}\n")
        fh.write(f">short1\n{random_dna(rng, 800)}\n")
        fh.write(f">short2\n{mutate(rng, core, sub_rate=0.03, indel_rate=0.0)}\n")
    queries = [("qcore", core)]
    for start in range(1_000, len(chrom) - 600, 3_500):
        frag = mutate(rng, chrom[start : start + 450],
                      sub_rate=0.03, indel_rate=0.0)
        queries.append((f"q{start}", frag))
    return bank_path, queries


def read_announce(path: Path, proc: subprocess.Popen, deadline: float):
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            err = proc.stderr.read() if proc.stderr else ""
            fail(f"process exited {proc.returncode} before announcing: {err}")
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            time.sleep(0.05)
            continue
        if data.get("pid") == proc.pid:
            return data
        time.sleep(0.05)
    fail(f"no announce file at {path} within the deadline")


def start_single(bank_path: Path, directory: Path):
    announce = directory / "single.announce.json"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(bank_path),
            "--workers", "1", "--no-memory-check",
            "--announce-file", str(announce),
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        env=child_env(), cwd=REPO,
    )
    info = read_announce(announce, proc, time.monotonic() + 120.0)
    note(f"single daemon ready on {info['host']}:{info['port']} "
         f"(pid {proc.pid})")
    return proc, info["host"], int(info["port"])


def start_fleet(bank_path: Path, directory: Path):
    announce = directory / "fleet.announce.json"
    work_dir = directory / "fleet_work"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve-fleet", str(bank_path),
            "--shards", str(N_SHARDS), "--workers-per-shard", "1",
            "--max-query-nt", str(MAX_QUERY_NT),
            "--work-dir", str(work_dir),
            "--announce-file", str(announce),
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        env=child_env(), cwd=REPO,
    )
    info = read_announce(announce, proc, time.monotonic() + 240.0)
    note(f"fleet router ready on {info['host']}:{info['port']} "
         f"(pid {proc.pid}, work dir {work_dir})")
    return proc, info["host"], int(info["port"]), work_dir


def fleet_health(host: str, port: int) -> dict:
    with OrisClient(host, port, timeout=30.0, retries=0) as client:
        return client.health()


def shard_pids(work_dir: Path) -> dict[int, int]:
    """Live shard pids, read from the manager's announce files."""
    pids = {}
    for path in sorted(work_dir.glob("shard*.announce.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        pid = data.get("pid")
        if pid is not None and Path(f"/proc/{pid}").exists():
            shard_id = int(path.name[len("shard"):len("shard") + 3])
            pids[shard_id] = pid
    return pids


def shm_segments() -> set:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.glob("scoris_*")}


def descendant_pids(root_pid: int) -> list[int]:
    """All live descendants of *root_pid* (shards, workers, trackers)."""
    children: dict[int, list[int]] = {}
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (OSError, IndexError, ValueError):
            continue
        children.setdefault(ppid, []).append(int(entry.name))
    out, frontier = [], [root_pid]
    while frontier:
        pid = frontier.pop()
        for child in children.get(pid, []):
            out.append(child)
            frontier.append(child)
    return out


def scenario_byte_identity(single, fleet, queries) -> None:
    shost, sport = single
    fhost, fport = fleet
    with OrisClient(shost, sport, timeout=TIMEOUT) as ref_client, \
         OrisClient(fhost, fport, timeout=TIMEOUT) as fleet_client:
        n_bytes = 0
        for name, seq in queries:
            ref = ref_client.query(name, seq)
            got = fleet_client.query(name, seq)
            if got != ref:
                for a, b in zip(got.splitlines(), ref.splitlines()):
                    if a != b:
                        note(f"  fleet : {a}")
                        note(f"  single: {b}")
                        break
                fail(f"fleet output for {name} differs from single daemon")
            n_bytes += len(ref)
    note(f"byte identity OK: {len(queries)} golden queries, {n_bytes} "
         f"bytes, fleet == single daemon exactly")


def scenario_shard_kill(fleet, work_dir: Path, queries) -> None:
    fhost, fport = fleet
    before = shard_pids(work_dir)
    if len(before) != N_SHARDS:
        fail(f"expected {N_SHARDS} live shards before the kill, "
             f"saw {sorted(before)}")

    stop = threading.Event()
    outcomes = {"ok": 0, "partial": 0, "shed": 0, "other": []}
    lock = threading.Lock()

    def soak():
        i = 0
        with OrisClient(fhost, fport, timeout=TIMEOUT, retries=0) as client:
            while not stop.is_set():
                name, seq = queries[i % len(queries)]
                i += 1
                try:
                    client.query(name, seq)
                    with lock:
                        outcomes["ok"] += 1
                except QueryFailed as exc:
                    # the *only* acceptable failure: a structured
                    # partial-result refusal, never a truncated answer
                    if "partial result refused" in str(exc):
                        with lock:
                            outcomes["partial"] += 1
                    else:
                        with lock:
                            outcomes["other"].append(repr(exc))
                except ServerShed:
                    with lock:
                        outcomes["shed"] += 1
                except (ServiceError, ConnectionError, OSError) as exc:
                    with lock:
                        outcomes["other"].append(repr(exc))

    threads = [threading.Thread(target=soak) for _ in range(2)]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    time.sleep(SOAK_SECONDS / 4)

    victim_id, victim_pid = sorted(before.items())[1]
    os.kill(victim_pid, signal.SIGKILL)
    note(f"SIGKILLed shard {victim_id} (pid {victim_pid}) mid-soak")

    # The manager must respawn it: a new pid announces for the shard.
    deadline = time.monotonic() + 120.0
    respawned = None
    while time.monotonic() < deadline:
        now = shard_pids(work_dir)
        if victim_id in now and now[victim_id] != victim_pid:
            respawned = now[victim_id]
            break
        time.sleep(0.2)
    if respawned is None:
        stop.set()
        fail(f"shard {victim_id} was not respawned within the deadline")
    note(f"shard {victim_id} respawned as pid {respawned}")

    # Health must return to all-ok.
    deadline = time.monotonic() + 60.0
    healthy = False
    while time.monotonic() < deadline:
        h = fleet_health(fhost, fport)
        if h.get("healthy"):
            healthy = True
            break
        time.sleep(0.5)
    if not healthy:
        stop.set()
        fail(f"fleet health did not return to all-ok after respawn: {h}")

    while time.monotonic() - t0 < SOAK_SECONDS:
        time.sleep(0.1)
    stop.set()
    for t in threads:
        t.join(TIMEOUT)

    if outcomes["other"]:
        fail(f"soak saw non-structured failures: {outcomes['other'][:5]}")
    if outcomes["ok"] == 0:
        fail("soak completed zero successful queries")
    note(f"shard-kill OK: {outcomes['ok']} ok, {outcomes['partial']} "
         f"loud partial-result refusals, {outcomes['shed']} sheds, "
         f"0 silent truncations; health all-ok after respawn")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", default="shard_smoke_report.txt")
    args = parser.parse_args()

    before_shm = shm_segments()
    with tempfile.TemporaryDirectory(prefix="scoris_shard_smoke_") as tmp:
        directory = Path(tmp)
        bank_path, queries = build_inputs(directory)
        note(f"bank: seam-heavy chrA ~{CHROM_NT} nt + 2 short sequences; "
             f"{len(queries)} golden queries (seam-straddling fragments)")

        single_proc, shost, sport = start_single(bank_path, directory)
        fleet_proc, fhost, fport, work_dir = start_fleet(bank_path, directory)
        fleet_desc = []
        try:
            h = fleet_health(fhost, fport)
            if not h.get("healthy") or h.get("n_shards") != N_SHARDS:
                fail(f"fleet not healthy at start: {h}")
            note(f"fleet health OK: {h['n_shards']} shards all ready")

            scenario_byte_identity((shost, sport), (fhost, fport), queries)
            scenario_shard_kill((fhost, fport), work_dir, queries)
            # Post-recovery the seams must still be invisible.
            scenario_byte_identity((shost, sport), (fhost, fport), queries)

            fleet_desc = descendant_pids(fleet_proc.pid)
            fleet_proc.send_signal(signal.SIGTERM)
            try:
                code = fleet_proc.wait(timeout=90.0)
            except subprocess.TimeoutExpired:
                fleet_proc.kill()
                fail("fleet did not exit within 90s of SIGTERM")
            if code != 0:
                fail(f"fleet exited {code} after SIGTERM (expected 0)")
            note("fleet drained and exited 0 on SIGTERM")
        finally:
            for proc in (fleet_proc, single_proc):
                if proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=30)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()

        # Leak checks: nothing outlives the fleet.
        leaked = shm_segments() - before_shm
        if leaked:
            fail(f"leaked /dev/shm segments: {sorted(leaked)}")
        deadline = time.monotonic() + 20.0
        survivors = list(fleet_desc)
        while survivors and time.monotonic() < deadline:
            survivors = [p for p in survivors if Path(f"/proc/{p}").exists()]
            if survivors:
                time.sleep(0.25)
        if survivors:
            fail(f"fleet descendants outlived the router: {survivors}")
        note("leak checks OK: 0 shm segments, 0 surviving shard/worker "
             "processes")

    note("SHARD SMOKE PASSED")
    Path(args.report).write_text("\n".join(_REPORT) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
